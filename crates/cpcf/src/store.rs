//! A disk-persistent, content-addressed store for verdicts and theory
//! lemmas: the warm-start tier beneath [`crate::SharedVerdictCache`] and
//! [`folic::SharedLemmaPool`].
//!
//! After the solver-side work of earlier milestones, the dominant remaining
//! cost of a corpus run is *redundant work across processes*: every run
//! re-proves verdicts the previous run already established, because the
//! in-memory caches die with the process. This module gives them a disk
//! home. The keys were content-addressed from the start — a verdict is
//! keyed by `(heap fingerprint, generation, query)`, where the fingerprint
//! chain-hashes the heap's constraint journal — so a verdict computed by
//! one process is valid in any other process that reaches a heap with the
//! same journal. Theory lemmas are even easier: they are universally valid
//! arithmetic facts (`¬(a₁ ∧ … ∧ aₙ)` for *every* assignment), so a stored
//! lemma can warm-start any later run's [`folic::SharedLemmaPool`],
//! including runs over different programs.
//!
//! ## On-disk format
//!
//! One append-only file per engine configuration,
//! `store-<fingerprint>.bin`, framed so corruption degrades to a cold miss
//! and never to a panic or a wrong verdict:
//!
//! ```text
//! header:  magic "CPCFSTOR" (8) · schema version u32 · engine fingerprint u64
//! record:  payload length u32 · crc32(payload) u32 · payload
//! payload: tag u8 (1 = verdict, 2 = lemma, 3 = export cone) · body
//! ```
//!
//! All integers are little-endian. On open, the header is validated first:
//! a magic/schema/fingerprint mismatch treats the whole file as cold and
//! rewrites it. Records are then read sequentially; the first framing or
//! CRC failure ends the load (everything before it is kept, the torn tail
//! is truncated so later appends stay readable). A concurrently-written or
//! garbage file therefore loads as whatever valid prefix it has — possibly
//! nothing — without affecting soundness: the store only ever *adds* cache
//! entries that were themselves computed by this same engine configuration.
//!
//! ## Identity across processes
//!
//! Three identities make persistence sound:
//!
//! * **Verdicts** are keyed by the serialized `(fingerprint, generation,
//!   query)` bytes. Map keys are the full byte strings (not hashes of
//!   them), so a stored verdict is returned only for byte-identical keys.
//! * **Lemmas** are serialized by atom *content* ([`folic::Atom`]
//!   structure), never by [`folic::AtomId`]: atom ids are process-local
//!   (the global registry numbers atoms in first-sight order), so ids are
//!   resolved through [`folic::global_atom`] on the way out and re-interned
//!   through a fresh [`folic::Arena`] on the way in.
//! * **Engine configuration** is fingerprinted ([`EngineFingerprint`]) over
//!   every gate and budget that can change a verdict (`CPCF_*` environment
//!   gates, prover/eval budgets, context depth). The fingerprint names the
//!   store file *and* sits in the header, so ablation legs never read each
//!   other's verdicts — a mismatch is a cold start, unit-tested below.
//!
//! ## Incremental re-verification
//!
//! The third record kind persists whole per-export verdicts keyed by
//! `(module, export, dependency-cone hash)` — see
//! [`crate::analyze::AnalyzeOptions::incremental`]. The cone hash covers
//! the export's contract, every definition transitively reachable from it,
//! and the program's struct declarations; an edit outside that cone leaves
//! the hash unchanged and the stored verdict reusable.

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use folic::{Arena, Atom, CmpOp, Proof, SharedLemmaPool, Term, Var};

use crate::analyze::ExportAnalysis;
use crate::cex::Counterexample;
use crate::heap::{CSymExpr, Tag};
use crate::prove::{CacheKey, Query};
use crate::syntax::{CBlame, Expr, Label, Prim};

/// File magic: identifies an analysis-store file.
const MAGIC: [u8; 8] = *b"CPCFSTOR";

/// On-disk schema version. Bump on any codec change: a mismatch makes the
/// whole file cold.
const SCHEMA_VERSION: u32 = 1;

/// Header length: magic + schema version + engine fingerprint.
const HEADER_LEN: usize = 8 + 4 + 8;

/// Upper bound on a single record's payload, so a corrupt length field
/// cannot trigger a huge allocation.
const MAX_RECORD: usize = 1 << 26;

/// Record payload tags.
const REC_VERDICT: u8 = 1;
const REC_LEMMA: u8 = 2;
const REC_CONE: u8 = 3;

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

/// FNV-1a over a byte string: a stable, dependency-free 64-bit hash used
/// for engine fingerprints and dependency-cone hashes (where the value must
/// be reproducible across processes — `std`'s `DefaultHasher` makes no such
/// promise across versions).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Guards every
/// record payload so torn writes and bit rot are detected on load.
fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xffff_ffffu32;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// A little-endian byte encoder for record payloads.
#[derive(Debug, Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Self {
        Enc::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// The matching decoder. Every read is checked; `None` means the payload is
/// malformed and the caller treats the record as cold.
#[derive(Debug)]
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn finished(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return None;
        }
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    /// A collection length, sanity-bounded by the remaining payload (every
    /// element costs at least one byte) so a corrupt count cannot drive a
    /// huge allocation.
    fn count(&mut self) -> Option<usize> {
        let count = self.u32()? as usize;
        if count > self.remaining() {
            return None;
        }
        Some(count)
    }
}

fn encode_proof(enc: &mut Enc, proof: Proof) {
    enc.u8(match proof {
        Proof::Proved => 0,
        Proof::Refuted => 1,
        Proof::Ambiguous => 2,
    });
}

fn decode_proof(dec: &mut Dec) -> Option<Proof> {
    Some(match dec.u8()? {
        0 => Proof::Proved,
        1 => Proof::Refuted,
        2 => Proof::Ambiguous,
        _ => return None,
    })
}

fn encode_tag(enc: &mut Enc, tag: &Tag) {
    match tag {
        Tag::Number => enc.u8(0),
        Tag::Real => enc.u8(1),
        Tag::Integer => enc.u8(2),
        Tag::Procedure => enc.u8(3),
        Tag::Pair => enc.u8(4),
        Tag::Null => enc.u8(5),
        Tag::Boolean => enc.u8(6),
        Tag::StringT => enc.u8(7),
        Tag::BoxT => enc.u8(8),
        Tag::Struct(name) => {
            enc.u8(9);
            enc.str(name);
        }
    }
}

fn encode_cmp_op(enc: &mut Enc, op: CmpOp) {
    enc.u8(match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    });
}

fn decode_cmp_op(dec: &mut Dec) -> Option<CmpOp> {
    Some(match dec.u8()? {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return None,
    })
}

fn encode_csym(enc: &mut Enc, expr: &CSymExpr) {
    match expr {
        CSymExpr::Loc(loc) => {
            enc.u8(0);
            enc.u32(loc.index());
        }
        CSymExpr::Const(n) => {
            enc.u8(1);
            enc.i64(*n);
        }
        CSymExpr::Add(a, b) => {
            enc.u8(2);
            encode_csym(enc, a);
            encode_csym(enc, b);
        }
        CSymExpr::Sub(a, b) => {
            enc.u8(3);
            encode_csym(enc, a);
            encode_csym(enc, b);
        }
        CSymExpr::Mul(a, b) => {
            enc.u8(4);
            encode_csym(enc, a);
            encode_csym(enc, b);
        }
        CSymExpr::Div(a, b) => {
            enc.u8(5);
            encode_csym(enc, a);
            encode_csym(enc, b);
        }
        CSymExpr::Mod(a, b) => {
            enc.u8(6);
            encode_csym(enc, a);
            encode_csym(enc, b);
        }
    }
}

/// Serializes a verdict-cache key. The byte string *is* the store key, so
/// equality on disk is exactly structural equality of the in-memory key.
pub(crate) fn verdict_key_bytes(key: &CacheKey) -> Vec<u8> {
    let (fingerprint, generation, query) = key;
    let mut enc = Enc::new();
    enc.u64(*fingerprint);
    enc.u64(*generation);
    match query {
        Query::Tag(loc, tag) => {
            enc.u8(0);
            enc.u32(loc.index());
            encode_tag(&mut enc, tag);
        }
        Query::Num(loc, op, rhs) => {
            enc.u8(1);
            enc.u32(loc.index());
            encode_cmp_op(&mut enc, *op);
            encode_csym(&mut enc, rhs);
        }
    }
    enc.into_bytes()
}

fn encode_term(enc: &mut Enc, term: &Term) {
    match term {
        Term::Int(n) => {
            enc.u8(0);
            enc.i64(*n);
        }
        Term::Var(v) => {
            enc.u8(1);
            enc.u32(v.index());
        }
        Term::Add(a, b) => {
            enc.u8(2);
            encode_term(enc, a);
            encode_term(enc, b);
        }
        Term::Sub(a, b) => {
            enc.u8(3);
            encode_term(enc, a);
            encode_term(enc, b);
        }
        Term::Mul(a, b) => {
            enc.u8(4);
            encode_term(enc, a);
            encode_term(enc, b);
        }
        Term::Neg(a) => {
            enc.u8(5);
            encode_term(enc, a);
        }
    }
}

fn decode_term(dec: &mut Dec) -> Option<Term> {
    Some(match dec.u8()? {
        0 => Term::Int(dec.i64()?),
        1 => Term::Var(Var::new(dec.u32()?)),
        2 => Term::Add(Box::new(decode_term(dec)?), Box::new(decode_term(dec)?)),
        3 => Term::Sub(Box::new(decode_term(dec)?), Box::new(decode_term(dec)?)),
        4 => Term::Mul(Box::new(decode_term(dec)?), Box::new(decode_term(dec)?)),
        5 => Term::Neg(Box::new(decode_term(dec)?)),
        _ => return None,
    })
}

fn encode_atom(enc: &mut Enc, atom: &Atom) {
    encode_term(enc, &atom.lhs);
    encode_cmp_op(enc, atom.op);
    encode_term(enc, &atom.rhs);
}

fn decode_atom(dec: &mut Dec) -> Option<Atom> {
    let lhs = decode_term(dec)?;
    let op = decode_cmp_op(dec)?;
    let rhs = decode_term(dec)?;
    Some(Atom { lhs, op, rhs })
}

/// The canonical serialization of a lemma's atom set (content, not ids) —
/// also the dedup key that keeps re-recorded lemmas out of the file.
fn lemma_bytes(atoms: &[Atom]) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u32(atoms.len() as u32);
    for atom in atoms {
        encode_atom(&mut enc, atom);
    }
    enc.into_bytes()
}

fn decode_lemma(dec: &mut Dec) -> Option<Vec<Atom>> {
    let count = dec.count()?;
    let mut atoms = Vec::with_capacity(count);
    for _ in 0..count {
        atoms.push(decode_atom(dec)?);
    }
    Some(atoms)
}

fn encode_prim(enc: &mut Enc, prim: Prim) {
    enc.u8(match prim {
        Prim::Add => 0,
        Prim::Sub => 1,
        Prim::Mul => 2,
        Prim::Div => 3,
        Prim::Mod => 4,
        Prim::Add1 => 5,
        Prim::Sub1 => 6,
        Prim::Lt => 7,
        Prim::Le => 8,
        Prim::Gt => 9,
        Prim::Ge => 10,
        Prim::NumEq => 11,
        Prim::IsZero => 12,
        Prim::Not => 13,
        Prim::IsNumber => 14,
        Prim::IsReal => 15,
        Prim::IsInteger => 16,
        Prim::IsProcedure => 17,
        Prim::IsPair => 18,
        Prim::IsNull => 19,
        Prim::IsBoolean => 20,
        Prim::IsString => 21,
        Prim::Cons => 22,
        Prim::Car => 23,
        Prim::Cdr => 24,
        Prim::Equal => 25,
        Prim::Assert => 26,
        Prim::Raise => 27,
        Prim::MakeBox => 28,
        Prim::Unbox => 29,
        Prim::SetBox => 30,
        Prim::StringLength => 31,
        Prim::IsBox => 32,
    });
}

fn decode_prim(dec: &mut Dec) -> Option<Prim> {
    Some(match dec.u8()? {
        0 => Prim::Add,
        1 => Prim::Sub,
        2 => Prim::Mul,
        3 => Prim::Div,
        4 => Prim::Mod,
        5 => Prim::Add1,
        6 => Prim::Sub1,
        7 => Prim::Lt,
        8 => Prim::Le,
        9 => Prim::Gt,
        10 => Prim::Ge,
        11 => Prim::NumEq,
        12 => Prim::IsZero,
        13 => Prim::Not,
        14 => Prim::IsNumber,
        15 => Prim::IsReal,
        16 => Prim::IsInteger,
        17 => Prim::IsProcedure,
        18 => Prim::IsPair,
        19 => Prim::IsNull,
        20 => Prim::IsBoolean,
        21 => Prim::IsString,
        22 => Prim::Cons,
        23 => Prim::Car,
        24 => Prim::Cdr,
        25 => Prim::Equal,
        26 => Prim::Assert,
        27 => Prim::Raise,
        28 => Prim::MakeBox,
        29 => Prim::Unbox,
        30 => Prim::SetBox,
        31 => Prim::StringLength,
        32 => Prim::IsBox,
        _ => return None,
    })
}

fn encode_exprs(enc: &mut Enc, exprs: &[Expr]) {
    enc.u32(exprs.len() as u32);
    for expr in exprs {
        encode_expr(enc, expr);
    }
}

fn decode_exprs(dec: &mut Dec) -> Option<Vec<Expr>> {
    let count = dec.count()?;
    let mut exprs = Vec::with_capacity(count);
    for _ in 0..count {
        exprs.push(decode_expr(dec)?);
    }
    Some(exprs)
}

/// Encodes a syntax expression. Doubles as the byte form hashed by the
/// dependency-cone hash, so it must cover every variant exactly.
pub(crate) fn encode_expr(enc: &mut Enc, expr: &Expr) {
    match expr {
        Expr::Var(name) => {
            enc.u8(0);
            enc.str(name);
        }
        Expr::Int(n) => {
            enc.u8(1);
            enc.i64(*n);
        }
        Expr::Complex(re, im) => {
            enc.u8(2);
            enc.i64(*re);
            enc.i64(*im);
        }
        Expr::Bool(b) => {
            enc.u8(3);
            enc.u8(u8::from(*b));
        }
        Expr::Str(s) => {
            enc.u8(4);
            enc.str(s);
        }
        Expr::Nil => enc.u8(5),
        Expr::Lam { params, body } => {
            enc.u8(6);
            enc.u32(params.len() as u32);
            for param in params {
                enc.str(param);
            }
            encode_expr(enc, body);
        }
        Expr::App(function, args) => {
            enc.u8(7);
            encode_expr(enc, function);
            encode_exprs(enc, args);
        }
        Expr::If(c, t, e) => {
            enc.u8(8);
            encode_expr(enc, c);
            encode_expr(enc, t);
            encode_expr(enc, e);
        }
        Expr::And(es) => {
            enc.u8(9);
            encode_exprs(enc, es);
        }
        Expr::Or(es) => {
            enc.u8(10);
            encode_exprs(enc, es);
        }
        Expr::Begin(es) => {
            enc.u8(11);
            encode_exprs(enc, es);
        }
        Expr::Let {
            bindings,
            recursive,
            body,
        } => {
            enc.u8(12);
            enc.u8(u8::from(*recursive));
            enc.u32(bindings.len() as u32);
            for (name, value) in bindings {
                enc.str(name);
                encode_expr(enc, value);
            }
            encode_expr(enc, body);
        }
        Expr::Prim(prim, args, label) => {
            enc.u8(13);
            encode_prim(enc, *prim);
            encode_exprs(enc, args);
            enc.u32(label.0);
        }
        Expr::Opaque(label) => {
            enc.u8(14);
            enc.u32(label.0);
        }
        Expr::CArrow(doms, rng) => {
            enc.u8(15);
            encode_exprs(enc, doms);
            encode_expr(enc, rng);
        }
        Expr::CAnd(es) => {
            enc.u8(16);
            encode_exprs(enc, es);
        }
        Expr::COr(es) => {
            enc.u8(17);
            encode_exprs(enc, es);
        }
        Expr::CCons(a, b) => {
            enc.u8(18);
            encode_expr(enc, a);
            encode_expr(enc, b);
        }
        Expr::CListOf(inner) => {
            enc.u8(19);
            encode_expr(enc, inner);
        }
        Expr::COneOf(es) => {
            enc.u8(20);
            encode_exprs(enc, es);
        }
        Expr::CAny => enc.u8(21),
        Expr::Mon {
            contract,
            value,
            pos,
            neg,
            label,
        } => {
            enc.u8(22);
            encode_expr(enc, contract);
            encode_expr(enc, value);
            enc.str(pos);
            enc.str(neg);
            enc.u32(label.0);
        }
        Expr::StructMake(name, args) => {
            enc.u8(23);
            enc.str(name);
            encode_exprs(enc, args);
        }
        Expr::StructPred(name, inner) => {
            enc.u8(24);
            enc.str(name);
            encode_expr(enc, inner);
        }
        Expr::StructGet(name, field, inner, label) => {
            enc.u8(25);
            enc.str(name);
            enc.u32(*field as u32);
            encode_expr(enc, inner);
            enc.u32(label.0);
        }
    }
}

fn decode_expr(dec: &mut Dec) -> Option<Expr> {
    Some(match dec.u8()? {
        0 => Expr::Var(dec.str()?),
        1 => Expr::Int(dec.i64()?),
        2 => Expr::Complex(dec.i64()?, dec.i64()?),
        3 => Expr::Bool(dec.u8()? != 0),
        4 => Expr::Str(dec.str()?),
        5 => Expr::Nil,
        6 => {
            let count = dec.count()?;
            let mut params = Vec::with_capacity(count);
            for _ in 0..count {
                params.push(dec.str()?);
            }
            Expr::Lam {
                params,
                body: Box::new(decode_expr(dec)?),
            }
        }
        7 => Expr::App(Box::new(decode_expr(dec)?), decode_exprs(dec)?),
        8 => Expr::If(
            Box::new(decode_expr(dec)?),
            Box::new(decode_expr(dec)?),
            Box::new(decode_expr(dec)?),
        ),
        9 => Expr::And(decode_exprs(dec)?),
        10 => Expr::Or(decode_exprs(dec)?),
        11 => Expr::Begin(decode_exprs(dec)?),
        12 => {
            let recursive = dec.u8()? != 0;
            let count = dec.count()?;
            let mut bindings = Vec::with_capacity(count);
            for _ in 0..count {
                let name = dec.str()?;
                let value = decode_expr(dec)?;
                bindings.push((name, value));
            }
            Expr::Let {
                bindings,
                recursive,
                body: Box::new(decode_expr(dec)?),
            }
        }
        13 => Expr::Prim(decode_prim(dec)?, decode_exprs(dec)?, Label(dec.u32()?)),
        14 => Expr::Opaque(Label(dec.u32()?)),
        15 => Expr::CArrow(decode_exprs(dec)?, Box::new(decode_expr(dec)?)),
        16 => Expr::CAnd(decode_exprs(dec)?),
        17 => Expr::COr(decode_exprs(dec)?),
        18 => Expr::CCons(Box::new(decode_expr(dec)?), Box::new(decode_expr(dec)?)),
        19 => Expr::CListOf(Box::new(decode_expr(dec)?)),
        20 => Expr::COneOf(decode_exprs(dec)?),
        21 => Expr::CAny,
        22 => {
            let contract = Box::new(decode_expr(dec)?);
            let value = Box::new(decode_expr(dec)?);
            let pos = dec.str()?;
            let neg = dec.str()?;
            let label = Label(dec.u32()?);
            Expr::Mon {
                contract,
                value,
                pos,
                neg,
                label,
            }
        }
        23 => Expr::StructMake(dec.str()?, decode_exprs(dec)?),
        24 => Expr::StructPred(dec.str()?, Box::new(decode_expr(dec)?)),
        25 => {
            let name = dec.str()?;
            let field = dec.u32()? as usize;
            let inner = Box::new(decode_expr(dec)?);
            let label = Label(dec.u32()?);
            Expr::StructGet(name, field, inner, label)
        }
        _ => return None,
    })
}

fn encode_blame(enc: &mut Enc, blame: &CBlame) {
    enc.str(&blame.party);
    enc.str(&blame.message);
    enc.u32(blame.label.0);
}

fn decode_blame(dec: &mut Dec) -> Option<CBlame> {
    let party = dec.str()?;
    let message = dec.str()?;
    let label = Label(dec.u32()?);
    Some(CBlame {
        party,
        message,
        label,
    })
}

fn encode_export_analysis(enc: &mut Enc, analysis: &ExportAnalysis) {
    match analysis {
        ExportAnalysis::Verified => enc.u8(0),
        ExportAnalysis::Counterexample(cex) => {
            enc.u8(1);
            encode_blame(enc, &cex.blame);
            enc.u8(u8::from(cex.validated));
            enc.u32(cex.bindings.len() as u32);
            for (label, expr) in &cex.bindings {
                enc.u32(label.0);
                encode_expr(enc, expr);
            }
        }
        ExportAnalysis::ProbableError(blame) => {
            enc.u8(2);
            encode_blame(enc, blame);
        }
        ExportAnalysis::Exhausted => enc.u8(3),
    }
}

fn decode_export_analysis(dec: &mut Dec) -> Option<ExportAnalysis> {
    Some(match dec.u8()? {
        0 => ExportAnalysis::Verified,
        1 => {
            let blame = decode_blame(dec)?;
            let validated = dec.u8()? != 0;
            let count = dec.count()?;
            let mut bindings = Vec::with_capacity(count);
            for _ in 0..count {
                let label = Label(dec.u32()?);
                let expr = decode_expr(dec)?;
                bindings.push((label, expr));
            }
            ExportAnalysis::Counterexample(Counterexample {
                blame,
                bindings,
                validated,
            })
        }
        2 => ExportAnalysis::ProbableError(decode_blame(dec)?),
        3 => ExportAnalysis::Exhausted,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Engine fingerprint
// ---------------------------------------------------------------------------

/// A 64-bit fingerprint of every engine setting that can change a verdict.
///
/// Two runs share stored verdicts only when their fingerprints match: the
/// fingerprint names the store file and sits in its header, so the CI
/// ablation matrix (`CPCF_PROVE_MODE`, `CPCF_SOLVER_CORE`,
/// `CPCF_LEMMA_SHARING`, `CPCF_THEORY_DL`, worker counts aside) can point
/// every leg at the same `--store` directory without cross-contamination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineFingerprint(pub u64);

impl EngineFingerprint {
    /// Hashes an ordered token sequence (FNV-1a with a separator byte, so
    /// token boundaries matter).
    pub fn from_tokens<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut bytes = Vec::new();
        for token in tokens {
            bytes.extend_from_slice(token.as_ref().as_bytes());
            bytes.push(0x1f);
        }
        EngineFingerprint(fnv1a(&bytes))
    }

    /// The fingerprint of an analysis configuration: prover engine and
    /// solver configuration (which carries the `CPCF_PROVE_MODE` /
    /// `CPCF_SOLVER_CORE` resolved defaults), evaluator budgets, context
    /// depth, validation, and the `CPCF_LEMMA_SHARING` / `CPCF_THEORY_DL`
    /// gates. Worker counts are deliberately excluded — verdicts are
    /// scheduling-independent by construction.
    pub fn for_analyze(options: &crate::analyze::AnalyzeOptions) -> Self {
        let eval = &options.eval;
        let prove = &eval.prove;
        EngineFingerprint::from_tokens([
            format!("schema={SCHEMA_VERSION}"),
            format!("solver={:?}", prove.solver),
            format!("fresh_per_query={}", prove.fresh_per_query),
            format!("cache={}", prove.cache),
            format!("retraction={}", prove.retraction),
            format!("fuel={}", eval.fuel),
            format!("max_branches={}", eval.max_branches),
            format!("use_case_maps={}", eval.use_case_maps),
            format!("havoc_depth={}", eval.havoc_depth),
            format!("listof_depth={}", eval.listof_depth),
            format!("validate={}", options.validate),
            format!("context_depth={}", options.context_depth),
            format!("lemma_sharing={}", folic::default_lemma_sharing()),
            format!("theory_dl={}", folic::default_theory_dl()),
        ])
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// A snapshot of the store's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Verdict lookups served from the persistent tier.
    pub store_hits: u64,
    /// Verdict lookups that fell through the persistent tier.
    pub store_misses: u64,
    /// New verdicts appended to the file.
    pub store_writes: u64,
    /// Stored lemmas re-published into a pool by warm starts.
    pub lemmas_warm_started: u64,
}

#[derive(Debug)]
struct StoreInner {
    path: PathBuf,
    fingerprint: EngineFingerprint,
    /// Persisted verdicts, keyed by the serialized cache-key bytes.
    verdicts: RwLock<HashMap<Box<[u8]>, Proof>>,
    /// Lemmas loaded from disk, by content, awaiting warm starts.
    loaded_lemmas: Mutex<Vec<Vec<Atom>>>,
    /// Canonical byte forms of every lemma on disk (loaded or appended), so
    /// re-recording is idempotent.
    lemma_seen: Mutex<HashSet<Box<[u8]>>>,
    /// Per-export verdicts keyed by `(module, export, cone hash)` — fully
    /// content-addressed, so the correct and faulty variants of a bench
    /// program (same module and export names, different cones) coexist.
    cones: RwLock<HashMap<(String, String, u64), ExportAnalysis>>,
    /// Append-only writer, positioned after the last valid record.
    writer: Mutex<BufWriter<File>>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    warm_started: AtomicU64,
}

/// A handle to one on-disk analysis store. Clones share the same store;
/// the handle is `Send + Sync` and cheap to clone (an `Arc`), mirroring
/// [`crate::SharedVerdictCache`] and [`folic::SharedLemmaPool`].
#[derive(Debug, Clone)]
pub struct AnalysisStore {
    inner: Arc<StoreInner>,
}

impl AnalysisStore {
    /// Opens (or creates) the store for `fingerprint` inside `dir`.
    ///
    /// The file's valid prefix is loaded; a bad header rewrites the file
    /// (cold start), and a torn or corrupt tail is truncated so appends
    /// stay readable. Only real I/O failures (unwritable directory, …)
    /// surface as errors — corrupted *content* never does.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created or
    /// the store file cannot be opened for writing.
    pub fn open(dir: impl AsRef<Path>, fingerprint: EngineFingerprint) -> std::io::Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("store-{:016x}.bin", fingerprint.0));

        let mut verdicts = HashMap::new();
        let mut loaded_lemmas = Vec::new();
        let mut lemma_seen = HashSet::new();
        let mut cones = HashMap::new();

        let existing = std::fs::read(&path).unwrap_or_default();
        let header_ok = existing.len() >= HEADER_LEN
            && existing[..8] == MAGIC
            && u32::from_le_bytes(existing[8..12].try_into().expect("4 bytes")) == SCHEMA_VERSION
            && u64::from_le_bytes(existing[12..HEADER_LEN].try_into().expect("8 bytes"))
                == fingerprint.0;
        let mut valid_end = HEADER_LEN;
        if header_ok {
            let mut pos = HEADER_LEN;
            while let Some(frame) = existing.get(pos..pos + 8) {
                let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
                let crc = u32::from_le_bytes(frame[4..].try_into().expect("4 bytes"));
                if len == 0 || len > MAX_RECORD {
                    break;
                }
                let Some(payload) = existing.get(pos + 8..pos + 8 + len) else {
                    break;
                };
                if crc32(payload) != crc {
                    break;
                }
                if !apply_record(
                    payload,
                    &mut verdicts,
                    &mut loaded_lemmas,
                    &mut lemma_seen,
                    &mut cones,
                ) {
                    break;
                }
                pos += 8 + len;
                valid_end = pos;
            }
        }

        let file = if header_ok {
            let mut file = OpenOptions::new().write(true).open(&path)?;
            // Drop the torn tail (if any) so the next append starts at a
            // record boundary every future load can parse.
            file.set_len(valid_end as u64)?;
            file.seek(SeekFrom::Start(valid_end as u64))?;
            file
        } else {
            let mut file = File::create(&path)?;
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(&MAGIC);
            header.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
            header.extend_from_slice(&fingerprint.0.to_le_bytes());
            file.write_all(&header)?;
            file
        };

        Ok(AnalysisStore {
            inner: Arc::new(StoreInner {
                path,
                fingerprint,
                verdicts: RwLock::new(verdicts),
                loaded_lemmas: Mutex::new(loaded_lemmas),
                lemma_seen: Mutex::new(lemma_seen),
                cones: RwLock::new(cones),
                writer: Mutex::new(BufWriter::new(file)),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                warm_started: AtomicU64::new(0),
            }),
        })
    }

    /// The store file's path.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// The engine fingerprint this store is keyed by.
    pub fn fingerprint(&self) -> EngineFingerprint {
        self.inner.fingerprint
    }

    /// Number of persisted verdicts currently known (loaded + appended).
    pub fn verdict_count(&self) -> usize {
        self.inner.verdicts.read().expect("store poisoned").len()
    }

    /// Number of distinct lemmas on disk (loaded + appended).
    pub fn lemma_count(&self) -> usize {
        self.inner.lemma_seen.lock().expect("store poisoned").len()
    }

    /// Number of per-export cone verdicts currently known.
    pub fn cone_count(&self) -> usize {
        self.inner.cones.read().expect("store poisoned").len()
    }

    /// A snapshot of the activity counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            store_hits: self.inner.hits.load(Ordering::Relaxed),
            store_misses: self.inner.misses.load(Ordering::Relaxed),
            store_writes: self.inner.writes.load(Ordering::Relaxed),
            lemmas_warm_started: self.inner.warm_started.load(Ordering::Relaxed),
        }
    }

    /// Appends one framed record; write errors are swallowed (the store
    /// degrades to not persisting — it never fails an analysis).
    fn append(&self, payload: &[u8]) {
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let mut writer = self.inner.writer.lock().expect("store writer poisoned");
        let _ = writer.write_all(&frame);
    }

    /// Flushes buffered appends to disk. Called at program boundaries by
    /// the bench harness and at the end of each scheduled module run.
    pub fn flush(&self) {
        let _ = self
            .inner
            .writer
            .lock()
            .expect("store writer poisoned")
            .flush();
    }

    /// The persisted verdict for the serialized cache key, if any.
    pub(crate) fn lookup_verdict(&self, key: &[u8]) -> Option<Proof> {
        let proof = self
            .inner
            .verdicts
            .read()
            .expect("store poisoned")
            .get(key)
            .copied();
        match proof {
            Some(proof) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                Some(proof)
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists a verdict; returns `true` when the key was new (and a
    /// record was appended).
    pub(crate) fn record_verdict(&self, key: Vec<u8>, proof: Proof) -> bool {
        {
            let mut verdicts = self.inner.verdicts.write().expect("store poisoned");
            match verdicts.entry(key.clone().into_boxed_slice()) {
                std::collections::hash_map::Entry::Occupied(_) => return false,
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(proof);
                }
            }
        }
        let mut enc = Enc::new();
        enc.u8(REC_VERDICT);
        encode_proof(&mut enc, proof);
        let mut payload = enc.into_bytes();
        payload.extend_from_slice(&key);
        self.append(&payload);
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Re-publishes every stored lemma into `pool`, re-interning the atoms
    /// through a scratch [`Arena`] (which registers them process-globally,
    /// so sibling cores can adopt the resulting ids). Returns how many
    /// lemmas were new to the pool.
    pub fn warm_start_lemmas(&self, pool: &SharedLemmaPool) -> u64 {
        let lemmas = self.inner.loaded_lemmas.lock().expect("store poisoned");
        if lemmas.is_empty() {
            return 0;
        }
        let mut arena = Arena::new();
        let mut published = 0u64;
        for atoms in lemmas.iter() {
            let ids: Vec<folic::AtomId> =
                atoms.iter().map(|atom| arena.intern_atom(atom)).collect();
            if pool.publish(&ids) {
                published += 1;
            }
        }
        self.inner
            .warm_started
            .fetch_add(published, Ordering::Relaxed);
        published
    }

    /// Persists the lemmas `pool` holds at or after `cursor`, resolving
    /// each atom id to its structural content. Lemmas already on disk (by
    /// content) are skipped, so recording a warm-started pool is
    /// idempotent. Returns how many new lemma records were appended.
    pub fn record_lemmas(&self, pool: &SharedLemmaPool, cursor: usize) -> u64 {
        let (fresh, _) = pool.fetch_from(cursor);
        let mut written = 0u64;
        for lemma in fresh {
            let atoms: Option<Vec<Atom>> = lemma.iter().map(|id| folic::global_atom(*id)).collect();
            let Some(atoms) = atoms else {
                continue;
            };
            let bytes = lemma_bytes(&atoms);
            let is_new = self
                .inner
                .lemma_seen
                .lock()
                .expect("store poisoned")
                .insert(bytes.clone().into_boxed_slice());
            if !is_new {
                continue;
            }
            let mut payload = vec![REC_LEMMA];
            payload.extend_from_slice(&bytes);
            self.append(&payload);
            written += 1;
        }
        written
    }

    /// The stored verdict for `(module, export)` whose dependency-cone hash
    /// is exactly `cone_hash`, if any.
    pub fn lookup_export(
        &self,
        module: &str,
        export: &str,
        cone_hash: u64,
    ) -> Option<ExportAnalysis> {
        self.inner
            .cones
            .read()
            .expect("store poisoned")
            .get(&(module.to_string(), export.to_string(), cone_hash))
            .cloned()
    }

    /// Persists an export's verdict under its dependency-cone hash.
    pub fn record_export(
        &self,
        module: &str,
        export: &str,
        cone_hash: u64,
        analysis: &ExportAnalysis,
    ) {
        let key = (module.to_string(), export.to_string(), cone_hash);
        {
            let mut cones = self.inner.cones.write().expect("store poisoned");
            match cones.entry(key) {
                std::collections::hash_map::Entry::Occupied(_) => return,
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(analysis.clone());
                }
            }
        }
        let mut enc = Enc::new();
        enc.u8(REC_CONE);
        enc.str(module);
        enc.str(export);
        enc.u64(cone_hash);
        encode_export_analysis(&mut enc, analysis);
        self.append(enc.bytes());
    }
}

/// Applies one CRC-valid record payload to the in-memory maps. Returns
/// `false` when the payload does not decode — the load stops there and the
/// tail is truncated, exactly like a CRC failure.
fn apply_record(
    payload: &[u8],
    verdicts: &mut HashMap<Box<[u8]>, Proof>,
    loaded_lemmas: &mut Vec<Vec<Atom>>,
    lemma_seen: &mut HashSet<Box<[u8]>>,
    cones: &mut HashMap<(String, String, u64), ExportAnalysis>,
) -> bool {
    let mut dec = Dec::new(payload);
    match dec.u8() {
        Some(REC_VERDICT) => {
            let Some(proof) = decode_proof(&mut dec) else {
                return false;
            };
            let key = &payload[2..];
            if key.is_empty() {
                return false;
            }
            verdicts.insert(key.to_vec().into_boxed_slice(), proof);
            true
        }
        Some(REC_LEMMA) => {
            let Some(atoms) = decode_lemma(&mut dec) else {
                return false;
            };
            if !dec.finished() || atoms.is_empty() {
                return false;
            }
            if lemma_seen.insert(payload[1..].to_vec().into_boxed_slice()) {
                loaded_lemmas.push(atoms);
            }
            true
        }
        Some(REC_CONE) => {
            let Some(module) = dec.str() else {
                return false;
            };
            let Some(export) = dec.str() else {
                return false;
            };
            let Some(cone_hash) = dec.u64() else {
                return false;
            };
            let Some(analysis) = decode_export_analysis(&mut dec) else {
                return false;
            };
            if !dec.finished() {
                return false;
            }
            cones.insert((module, export, cone_hash), analysis);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Loc;
    use std::sync::atomic::AtomicU32;

    fn temp_store_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cpcf-store-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fp(n: u64) -> EngineFingerprint {
        EngineFingerprint(n)
    }

    fn sample_key(i: u64) -> Vec<u8> {
        verdict_key_bytes(&(
            0xdead_beef ^ i,
            i,
            Query::Num(
                Loc::new(i as u32),
                CmpOp::Lt,
                CSymExpr::Add(
                    Box::new(CSymExpr::Loc(Loc::new(1))),
                    Box::new(CSymExpr::Const(7)),
                ),
            ),
        ))
    }

    fn sample_atom(i: u32) -> Atom {
        Atom {
            lhs: Term::Add(
                Box::new(Term::Var(Var::new(i))),
                Box::new(Term::Neg(Box::new(Term::Int(3)))),
            ),
            op: CmpOp::Le,
            rhs: Term::Int(i64::from(i)),
        }
    }

    fn sample_cex() -> ExportAnalysis {
        ExportAnalysis::Counterexample(Counterexample {
            blame: CBlame {
                party: "m".into(),
                message: "division by zero".into(),
                label: Label(7),
            },
            bindings: vec![
                (Label(500_000), Expr::Int(100)),
                (
                    Label(500_001),
                    Expr::lam(
                        vec!["x"],
                        Expr::Prim(Prim::Add, vec![Expr::var("x")], Label(3)),
                    ),
                ),
            ],
            validated: true,
        })
    }

    #[test]
    fn round_trips_verdicts_lemmas_and_cones_across_reopen() {
        let dir = temp_store_dir("roundtrip");
        {
            let store = AnalysisStore::open(&dir, fp(1)).expect("open");
            assert!(store.record_verdict(sample_key(0), Proof::Proved));
            assert!(store.record_verdict(sample_key(1), Proof::Refuted));
            assert!(
                !store.record_verdict(sample_key(0), Proof::Proved),
                "re-recording is deduplicated"
            );
            let pool = SharedLemmaPool::new();
            let mut arena = Arena::new();
            let ids: Vec<_> = (0..3).map(|i| arena.intern_atom(&sample_atom(i))).collect();
            pool.publish(&ids);
            assert_eq!(store.record_lemmas(&pool, 0), 1);
            assert_eq!(store.record_lemmas(&pool, 0), 0, "lemma dedup by content");
            store.record_export("m", "f", 42, &sample_cex());
            store.record_export("m", "g", 43, &ExportAnalysis::Verified);
            store.flush();
        }
        let store = AnalysisStore::open(&dir, fp(1)).expect("reopen");
        assert_eq!(store.verdict_count(), 2);
        assert_eq!(store.lemma_count(), 1);
        assert_eq!(store.cone_count(), 2);
        assert_eq!(store.lookup_verdict(&sample_key(0)), Some(Proof::Proved));
        assert_eq!(store.lookup_verdict(&sample_key(1)), Some(Proof::Refuted));
        assert_eq!(store.lookup_verdict(&sample_key(2)), None);
        assert_eq!(store.lookup_export("m", "f", 42), Some(sample_cex()));
        assert_eq!(
            store.lookup_export("m", "g", 43),
            Some(ExportAnalysis::Verified)
        );
        assert_eq!(store.lookup_export("m", "f", 41), None, "hash must match");
        let counters = store.counters();
        assert_eq!(counters.store_hits, 2);
        assert_eq!(counters.store_misses, 1);
        // Warm-starting a fresh pool re-publishes the stored lemma.
        let pool = SharedLemmaPool::new();
        assert_eq!(store.warm_start_lemmas(&pool), 1);
        assert_eq!(pool.len(), 1);
        assert_eq!(store.counters().lemmas_warm_started, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_mismatch_is_a_cold_start() {
        let dir = temp_store_dir("schema");
        let path = {
            let store = AnalysisStore::open(&dir, fp(2)).expect("open");
            store.record_verdict(sample_key(0), Proof::Proved);
            store.flush();
            store.path().to_path_buf()
        };
        let mut bytes = std::fs::read(&path).expect("file exists");
        // Pretend a future schema wrote this file.
        bytes[8..12].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).expect("rewrite");
        let store = AnalysisStore::open(&dir, fp(2)).expect("reopen");
        assert_eq!(store.verdict_count(), 0, "newer schema loads cold");
        // The rewritten file is usable again.
        assert!(store.record_verdict(sample_key(5), Proof::Ambiguous));
        store.flush();
        let store = AnalysisStore::open(&dir, fp(2)).expect("third open");
        assert_eq!(store.lookup_verdict(&sample_key(5)), Some(Proof::Ambiguous));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_fingerprint_mismatch_is_a_cold_start() {
        let dir = temp_store_dir("fingerprint");
        let path = {
            let store = AnalysisStore::open(&dir, fp(3)).expect("open");
            store.record_verdict(sample_key(0), Proof::Proved);
            store.flush();
            store.path().to_path_buf()
        };
        // Different fingerprints normally live in different files; simulate
        // a renamed/copied file by corrupting the header fingerprint.
        let mut bytes = std::fs::read(&path).expect("file exists");
        bytes[12..20].copy_from_slice(&99u64.to_le_bytes());
        std::fs::write(&path, &bytes).expect("rewrite");
        let store = AnalysisStore::open(&dir, fp(3)).expect("reopen");
        assert_eq!(
            store.verdict_count(),
            0,
            "foreign engine fingerprint loads cold"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_fingerprints_use_distinct_files() {
        let dir = temp_store_dir("ablation");
        let a = AnalysisStore::open(&dir, fp(10)).expect("open a");
        let b = AnalysisStore::open(&dir, fp(11)).expect("open b");
        assert_ne!(a.path(), b.path());
        a.record_verdict(sample_key(0), Proof::Proved);
        a.flush();
        assert_eq!(
            b.lookup_verdict(&sample_key(0)),
            None,
            "ablation legs never cross-contaminate"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_keeps_the_valid_prefix_and_stays_appendable() {
        let dir = temp_store_dir("truncated");
        let path = {
            let store = AnalysisStore::open(&dir, fp(4)).expect("open");
            for i in 0..3 {
                store.record_verdict(sample_key(i), Proof::Proved);
            }
            store.flush();
            store.path().to_path_buf()
        };
        let bytes = std::fs::read(&path).expect("file exists");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("truncate");
        let store = AnalysisStore::open(&dir, fp(4)).expect("reopen");
        assert_eq!(store.verdict_count(), 2, "only the torn record is lost");
        assert!(store.record_verdict(sample_key(3), Proof::Refuted));
        store.flush();
        let store = AnalysisStore::open(&dir, fp(4)).expect("third open");
        assert_eq!(
            store.verdict_count(),
            3,
            "appends after tail repair parse cleanly"
        );
        assert_eq!(store.lookup_verdict(&sample_key(3)), Some(Proof::Refuted));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_and_short_files_load_cold_without_panicking() {
        for (tag, content) in [
            ("garbage", b"not a store file at all, definitely".to_vec()),
            ("short", b"CPCF".to_vec()),
            ("empty", Vec::new()),
        ] {
            let dir = temp_store_dir(tag);
            std::fs::create_dir_all(&dir).expect("mkdir");
            let path = dir.join(format!("store-{:016x}.bin", 5u64));
            std::fs::write(&path, &content).expect("write garbage");
            let store = AnalysisStore::open(&dir, fp(5)).expect("open");
            assert_eq!(store.verdict_count(), 0);
            assert_eq!(store.lemma_count(), 0);
            assert!(store.record_verdict(sample_key(0), Proof::Proved));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn corrupt_record_crc_drops_the_tail_only() {
        let dir = temp_store_dir("crc");
        let path = {
            let store = AnalysisStore::open(&dir, fp(6)).expect("open");
            for i in 0..3 {
                store.record_verdict(sample_key(i), Proof::Proved);
            }
            store.record_export("m", "f", 1, &ExportAnalysis::Verified);
            store.flush();
            store.path().to_path_buf()
        };
        let mut bytes = std::fs::read(&path).expect("file exists");
        // Flip a byte inside the second record's payload: records 2.. are
        // dropped, record 1 survives.
        let first_len =
            u32::from_le_bytes(bytes[HEADER_LEN..HEADER_LEN + 4].try_into().expect("4")) as usize;
        let second_payload = HEADER_LEN + 8 + first_len + 8;
        bytes[second_payload + 4] ^= 0xff;
        std::fs::write(&path, &bytes).expect("rewrite");
        let store = AnalysisStore::open(&dir, fp(6)).expect("reopen");
        assert_eq!(store.verdict_count(), 1);
        assert_eq!(store.cone_count(), 0, "records after the corruption drop");
        assert_eq!(store.lookup_verdict(&sample_key(0)), Some(Proof::Proved));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_analysis_round_trips_through_the_codec() {
        for analysis in [
            ExportAnalysis::Verified,
            ExportAnalysis::Exhausted,
            ExportAnalysis::ProbableError(CBlame {
                party: "p".into(),
                message: "m".into(),
                label: Label(9),
            }),
            sample_cex(),
        ] {
            let mut enc = Enc::new();
            encode_export_analysis(&mut enc, &analysis);
            let bytes = enc.into_bytes();
            let mut dec = Dec::new(&bytes);
            let decoded = decode_export_analysis(&mut dec).expect("decodes");
            assert!(dec.finished());
            assert_eq!(decoded, analysis);
        }
    }

    #[test]
    fn expr_codec_covers_every_variant() {
        let deep = Expr::Let {
            bindings: vec![
                ("a".into(), Expr::Complex(1, -2)),
                ("b".into(), Expr::Str("s".into())),
            ],
            recursive: true,
            body: Box::new(Expr::Begin(vec![
                Expr::And(vec![Expr::Bool(true), Expr::Nil]),
                Expr::Or(vec![Expr::Opaque(Label(1))]),
                Expr::Mon {
                    contract: Box::new(Expr::CArrow(
                        vec![Expr::CAnd(vec![Expr::CAny])],
                        Box::new(Expr::COr(vec![Expr::CCons(
                            Box::new(Expr::CAny),
                            Box::new(Expr::CListOf(Box::new(Expr::COneOf(vec![Expr::Int(1)])))),
                        )])),
                    )),
                    value: Box::new(Expr::If(
                        Box::new(Expr::StructPred("n".into(), Box::new(Expr::var("x")))),
                        Box::new(Expr::StructGet(
                            "n".into(),
                            1,
                            Box::new(Expr::StructMake("n".into(), vec![Expr::Int(4)])),
                            Label(2),
                        )),
                        Box::new(Expr::app(
                            Expr::lam(vec!["y"], Expr::Prim(Prim::Car, vec![], Label(5))),
                            vec![Expr::Int(0)],
                        )),
                    )),
                    pos: "pos".into(),
                    neg: "neg".into(),
                    label: Label(3),
                },
            ])),
        };
        let mut enc = Enc::new();
        encode_expr(&mut enc, &deep);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(decode_expr(&mut dec).expect("decodes"), deep);
        assert!(dec.finished());
    }

    #[test]
    fn engine_fingerprint_tracks_verdict_relevant_options() {
        let base = crate::analyze::AnalyzeOptions::default();
        let mut bigger_fuel = base.clone();
        bigger_fuel.eval.fuel += 1;
        let mut deeper = base.clone();
        deeper.context_depth += 1;
        let same = base.clone();
        assert_eq!(
            EngineFingerprint::for_analyze(&base),
            EngineFingerprint::for_analyze(&same)
        );
        assert_ne!(
            EngineFingerprint::for_analyze(&base),
            EngineFingerprint::for_analyze(&bigger_fuel)
        );
        assert_ne!(
            EngineFingerprint::for_analyze(&base),
            EngineFingerprint::for_analyze(&deeper)
        );
        // Worker counts are excluded: verdicts are scheduling-independent.
        let mut sharded = base.clone();
        sharded.workers = 7;
        assert_eq!(
            EngineFingerprint::for_analyze(&base),
            EngineFingerprint::for_analyze(&sharded)
        );
    }
}
