//! Counterexample reconstruction for CPCF: turning the heap at an error
//! state plus a first-order model into concrete input expressions.

use std::collections::BTreeSet;

use folic::Model;

use crate::heap::{CRefinement, Heap, Loc, SVal, Tag};
use crate::numeric::Number;
use crate::prove::ProverSession;
use crate::syntax::{CBlame, Expr, Label, Prim};

/// A concrete counterexample for a module export.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The blame the counterexample triggers.
    pub blame: CBlame,
    /// Concrete expressions for each opaque input label.
    pub bindings: Vec<(Label, Expr)>,
    /// Whether a concrete re-run confirmed the blame.
    pub validated: bool,
}

impl Counterexample {
    /// The binding for a given opaque label.
    pub fn binding(&self, label: Label) -> Option<&Expr> {
        self.bindings
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, e)| e)
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.blame)?;
        writeln!(f, "breaking inputs:")?;
        for (label, expr) in &self.bindings {
            writeln!(f, "  {label} = {expr:?}")?;
        }
        Ok(())
    }
}

/// Builds the bindings (opaque label → concrete expression) from an error
/// state's heap, or `None` when the path condition has no model.
pub fn reconstruct_bindings(
    session: &mut ProverSession,
    heap: &Heap,
    labels: &[Label],
) -> Option<Vec<(Label, Expr)>> {
    let model = session.heap_model(heap)?;
    let bindings = labels
        .iter()
        .map(|label| {
            let expr = match heap.opaque_loc(*label) {
                Some(loc) => reconstruct(heap, &model, loc, &mut BTreeSet::new()),
                None => Expr::Int(0),
            };
            (*label, expr)
        })
        .collect();
    Some(bindings)
}

/// Reconstructs a concrete literal expression for the value at `loc`.
pub fn reconstruct(heap: &Heap, model: &Model, loc: Loc, visiting: &mut BTreeSet<Loc>) -> Expr {
    if visiting.contains(&loc) {
        return Expr::Int(0);
    }
    visiting.insert(loc);
    let result = match heap.try_get(loc) {
        None => Expr::Int(0),
        Some(SVal::Num(Number::Int(n))) => Expr::Int(*n),
        Some(SVal::Num(Number::Complex(re, im))) => Expr::Complex(*re, *im),
        Some(SVal::Bool(b)) => Expr::Bool(*b),
        Some(SVal::Str(s)) => Expr::Str(s.clone()),
        Some(SVal::Nil) => Expr::Nil,
        Some(SVal::Pair(car, cdr)) => Expr::Prim(
            Prim::Cons,
            vec![
                reconstruct(heap, model, *car, visiting),
                reconstruct(heap, model, *cdr, visiting),
            ],
            Label(u32::MAX),
        ),
        Some(SVal::StructVal { tag, fields }) => Expr::StructMake(
            tag.clone(),
            fields
                .iter()
                .map(|f| reconstruct(heap, model, *f, visiting))
                .collect(),
        ),
        Some(SVal::BoxVal(inner)) => Expr::Prim(
            Prim::MakeBox,
            vec![reconstruct(heap, model, *inner, visiting)],
            Label(u32::MAX),
        ),
        Some(SVal::Closure { params, .. }) => {
            // A concrete closure flowing in from the program itself: stand in
            // with a constant function of the right arity.
            Expr::lam(params.clone(), Expr::Int(0))
        }
        Some(SVal::Guarded { .. }) | Some(SVal::Contract(_)) => Expr::Int(0),
        Some(SVal::Opaque {
            refinements,
            entries,
        }) => reconstruct_opaque(heap, model, loc, refinements, entries, visiting),
    };
    visiting.remove(&loc);
    result
}

fn reconstruct_opaque(
    heap: &Heap,
    model: &Model,
    loc: Loc,
    refinements: &[CRefinement],
    entries: &[(Loc, Loc)],
    visiting: &mut BTreeSet<Loc>,
) -> Expr {
    let is_procedure =
        refinements.contains(&CRefinement::Is(Tag::Procedure)) || !entries.is_empty();
    if is_procedure {
        // λx. if (equal? x k₁) v₁ (… default)
        let mut body = Expr::Int(0);
        for (argument, result) in entries.iter().rev() {
            let key = reconstruct(heap, model, *argument, visiting);
            let value = reconstruct(heap, model, *result, visiting);
            body = Expr::ite(
                Expr::Prim(Prim::Equal, vec![Expr::var("x"), key], Label(u32::MAX)),
                value,
                body,
            );
        }
        return Expr::lam(vec!["x"], body);
    }
    if refinements.contains(&CRefinement::IsFalse) {
        return Expr::Bool(false);
    }
    if refinements.contains(&CRefinement::Is(Tag::Boolean)) {
        return Expr::Bool(true);
    }
    if refinements.contains(&CRefinement::Is(Tag::StringT)) {
        return Expr::Str(String::new());
    }
    if refinements.contains(&CRefinement::Is(Tag::Null)) {
        return Expr::Nil;
    }
    // Default: a numeric value from the model (covers Integer/Real/Number
    // refinements, numeric constraints, and completely unconstrained values).
    Expr::Int(model.value_or_zero(loc.solver_var()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use folic::CmpOp;

    use crate::heap::CSymExpr;

    #[test]
    fn numbers_come_from_the_model() {
        let mut heap = Heap::new();
        let loc = heap.alloc_opaque(Label(1));
        heap.refine(loc, CRefinement::NumCmp(CmpOp::Eq, CSymExpr::int(100)));
        let mut session = ProverSession::new();
        let bindings = reconstruct_bindings(&mut session, &heap, &[Label(1)]).expect("model");
        assert_eq!(bindings[0].1, Expr::Int(100));
    }

    #[test]
    fn structures_reconstruct_recursively() {
        let mut heap = Heap::new();
        let loc = heap.alloc_opaque(Label(1));
        let car = heap.alloc(SVal::Num(Number::Int(1)));
        let cdr = heap.alloc(SVal::Nil);
        heap.set(loc, SVal::Pair(car, cdr));
        let mut session = ProverSession::new();
        let bindings = reconstruct_bindings(&mut session, &heap, &[Label(1)]).expect("model");
        match &bindings[0].1 {
            Expr::Prim(Prim::Cons, parts, _) => {
                assert_eq!(parts[0], Expr::Int(1));
                assert_eq!(parts[1], Expr::Nil);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn opaque_functions_become_case_lambdas() {
        let mut heap = Heap::new();
        let f = heap.alloc_opaque(Label(1));
        let key = heap.alloc(SVal::Num(Number::Int(0)));
        let value = heap.alloc(SVal::Num(Number::Int(100)));
        heap.set(
            f,
            SVal::Opaque {
                refinements: vec![CRefinement::Is(Tag::Procedure)],
                entries: vec![(key, value)],
            },
        );
        let mut session = ProverSession::new();
        let bindings = reconstruct_bindings(&mut session, &heap, &[Label(1)]).expect("model");
        assert!(matches!(bindings[0].1, Expr::Lam { .. }));
    }

    #[test]
    fn complex_numbers_survive_reconstruction() {
        let mut heap = Heap::new();
        let loc = heap.alloc_opaque(Label(1));
        heap.set(loc, SVal::Num(Number::complex(0, 1)));
        let mut session = ProverSession::new();
        let bindings = reconstruct_bindings(&mut session, &heap, &[Label(1)]).expect("model");
        assert_eq!(bindings[0].1, Expr::Complex(0, 1));
    }

    #[test]
    fn contradictory_heaps_have_no_bindings() {
        let mut heap = Heap::new();
        let loc = heap.alloc_opaque(Label(1));
        heap.refine(loc, CRefinement::NumCmp(CmpOp::Eq, CSymExpr::int(0)));
        heap.refine(loc, CRefinement::NumCmp(CmpOp::Eq, CSymExpr::int(1)));
        let mut session = ProverSession::new();
        assert!(reconstruct_bindings(&mut session, &heap, &[Label(1)]).is_none());
    }
}
