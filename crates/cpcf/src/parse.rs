//! Parser for the Racket-like surface syntax of CPCF.
//!
//! The grammar covers what the benchmark corpus needs: modules with
//! contracted exports, `define` (including function shorthand), `struct`
//! declarations, `lambda`/`let`/`letrec`/`let*`/`cond`/`when`/`unless`,
//! quotation of literals and lists, contract combinators (`->`, `and/c`,
//! `or/c`, `cons/c`, `listof`, `one-of/c`, `any/c`) and the primitive
//! operations of [`crate::syntax::Prim`]. Opaque values are written `•` or
//! `(opaque)`.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::syntax::{Definition, Expr, Label, Module, Prim, Program, Provide, StructDef};

/// A parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Sexp {
    Atom(String),
    Str(String),
    List(Vec<Sexp>),
}

fn tokenize(input: &str) -> Result<Vec<Sexp>, ParseError> {
    let mut tokens: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            ';' => {
                for next in chars.by_ref() {
                    if next == '\n' {
                        break;
                    }
                }
            }
            '"' => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                let mut literal = String::from("\"");
                for next in chars.by_ref() {
                    if next == '"' {
                        break;
                    }
                    literal.push(next);
                }
                tokens.push(literal);
            }
            '(' | ')' | '[' | ']' | '\'' => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                tokens.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    let mut position = 0;
    let mut sexps = Vec::new();
    while position < tokens.len() {
        sexps.push(parse_sexp(&tokens, &mut position)?);
    }
    Ok(sexps)
}

fn parse_sexp(tokens: &[String], position: &mut usize) -> Result<Sexp, ParseError> {
    let Some(token) = tokens.get(*position) else {
        return Err(ParseError::new("unexpected end of input"));
    };
    *position += 1;
    match token.as_str() {
        "(" | "[" => {
            let mut items = Vec::new();
            loop {
                match tokens.get(*position).map(String::as_str) {
                    None => return Err(ParseError::new("unclosed parenthesis")),
                    Some(")") | Some("]") => {
                        *position += 1;
                        return Ok(Sexp::List(items));
                    }
                    Some(_) => items.push(parse_sexp(tokens, position)?),
                }
            }
        }
        ")" | "]" => Err(ParseError::new("unexpected closing parenthesis")),
        "'" => {
            let quoted = parse_sexp(tokens, position)?;
            Ok(Sexp::List(vec![Sexp::Atom("quote".to_string()), quoted]))
        }
        s if s.starts_with('"') => Ok(Sexp::Str(s[1..].to_string())),
        atom => Ok(Sexp::Atom(atom.to_string())),
    }
}

/// The parser: holds the label counter and the global naming environment.
#[derive(Debug, Default)]
pub struct Parser {
    next_label: u32,
    globals: HashSet<String>,
    structs: HashMap<String, StructDef>,
}

impl Parser {
    /// Creates a parser.
    pub fn new() -> Self {
        Parser::default()
    }

    /// The struct declarations discovered while parsing.
    pub fn structs(&self) -> impl Iterator<Item = &StructDef> + '_ {
        self.structs.values()
    }

    fn fresh_label(&mut self) -> Label {
        let label = Label(self.next_label);
        self.next_label += 1;
        label
    }

    /// Parses a whole program (one or more `module` forms, or a bare list of
    /// definitions treated as a module called `"main"`).
    pub fn parse_program(&mut self, input: &str) -> Result<Program, ParseError> {
        let forms = tokenize(input)?;
        if forms.is_empty() {
            return Err(ParseError::new("empty program"));
        }
        let is_module_form = |s: &Sexp| {
            matches!(s, Sexp::List(items)
                if matches!(items.first(), Some(Sexp::Atom(k)) if k == "module"))
        };
        let module_forms: Vec<Vec<Sexp>> = if forms.iter().all(is_module_form) {
            forms
                .into_iter()
                .map(|f| match f {
                    Sexp::List(items) => items,
                    Sexp::Atom(_) | Sexp::Str(_) => unreachable!("checked module form"),
                })
                .collect()
        } else {
            let mut wrapped = vec![
                Sexp::Atom("module".to_string()),
                Sexp::Atom("main".to_string()),
            ];
            wrapped.extend(forms);
            vec![wrapped]
        };

        // First pass: collect global names and struct declarations across all
        // modules so definitions can refer to each other and shadow prims.
        for items in &module_forms {
            for form in &items[2..] {
                self.scan_form(form)?;
            }
        }

        let mut program = Program::default();
        for items in &module_forms {
            program.modules.push(self.parse_module(items)?);
        }
        Ok(program)
    }

    /// Parses a standalone expression (useful in tests and examples).
    pub fn parse_expr_str(&mut self, input: &str) -> Result<Expr, ParseError> {
        let forms = tokenize(input)?;
        let [form] = forms.as_slice() else {
            return Err(ParseError::new("expected exactly one expression"));
        };
        self.expr(form, &HashSet::new())
    }

    fn scan_form(&mut self, form: &Sexp) -> Result<(), ParseError> {
        let Sexp::List(items) = form else {
            return Ok(());
        };
        match items.first() {
            Some(Sexp::Atom(k)) if k == "define" => {
                match items.get(1) {
                    Some(Sexp::Atom(name)) => {
                        self.globals.insert(name.clone());
                    }
                    Some(Sexp::List(header)) => {
                        if let Some(Sexp::Atom(name)) = header.first() {
                            self.globals.insert(name.clone());
                        }
                    }
                    _ => {}
                }
                Ok(())
            }
            Some(Sexp::Atom(k)) if k == "struct" || k == "define-struct" => {
                let (Some(Sexp::Atom(name)), Some(Sexp::List(fields))) =
                    (items.get(1), items.get(2))
                else {
                    return Err(ParseError::new("struct expects a name and a field list"));
                };
                let fields: Vec<String> = fields
                    .iter()
                    .map(|f| match f {
                        Sexp::Atom(a) => Ok(a.clone()),
                        _ => Err(ParseError::new("struct fields must be identifiers")),
                    })
                    .collect::<Result<_, _>>()?;
                self.structs.insert(
                    name.clone(),
                    StructDef {
                        name: name.clone(),
                        fields,
                    },
                );
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn parse_module(&mut self, items: &[Sexp]) -> Result<Module, ParseError> {
        let Some(Sexp::Atom(name)) = items.get(1) else {
            return Err(ParseError::new("module expects a name"));
        };
        let mut module = Module {
            name: name.clone(),
            ..Module::default()
        };
        for form in &items[2..] {
            let Sexp::List(parts) = form else {
                return Err(ParseError::new("module forms must be lists"));
            };
            match parts.first() {
                Some(Sexp::Atom(k)) if k == "provide" => {
                    self.parse_provides(&parts[1..], &mut module)?;
                }
                Some(Sexp::Atom(k)) if k == "struct" || k == "define-struct" => {
                    if let (Some(Sexp::Atom(name)), Some(_)) = (parts.get(1), parts.get(2)) {
                        if let Some(def) = self.structs.get(name) {
                            module.structs.push(def.clone());
                        }
                    }
                }
                Some(Sexp::Atom(k)) if k == "define" => {
                    module.definitions.push(self.parse_define(&parts[1..])?);
                }
                Some(Sexp::Atom(k)) if k == "require" => {}
                _ => return Err(ParseError::new("unknown module form")),
            }
        }
        Ok(module)
    }

    fn parse_provides(&mut self, specs: &[Sexp], module: &mut Module) -> Result<(), ParseError> {
        for spec in specs {
            match spec {
                Sexp::List(parts) if matches!(parts.first(), Some(Sexp::Atom(k)) if k == "contract-out") =>
                {
                    self.parse_provides(&parts[1..], module)?;
                }
                Sexp::List(parts) => {
                    let [Sexp::Atom(name), contract] = parts.as_slice() else {
                        return Err(ParseError::new("provide spec is [name contract]"));
                    };
                    let contract = self.expr(contract, &HashSet::new())?;
                    module.provides.push(Provide {
                        name: name.clone(),
                        contract,
                    });
                }
                Sexp::Atom(name) => {
                    module.provides.push(Provide {
                        name: name.clone(),
                        contract: Expr::CAny,
                    });
                }
                Sexp::Str(_) => return Err(ParseError::new("provide spec is [name contract]")),
            }
        }
        Ok(())
    }

    fn parse_define(&mut self, parts: &[Sexp]) -> Result<Definition, ParseError> {
        match parts {
            [Sexp::Atom(name), body] => Ok(Definition {
                name: name.clone(),
                body: self.expr(body, &HashSet::new())?,
            }),
            [Sexp::List(header), body @ ..] if !body.is_empty() => {
                let Some(Sexp::Atom(name)) = header.first() else {
                    return Err(ParseError::new("define header needs a name"));
                };
                let params: Vec<String> = header[1..]
                    .iter()
                    .map(|p| match p {
                        Sexp::Atom(a) => Ok(a.clone()),
                        _ => Err(ParseError::new("parameters must be identifiers")),
                    })
                    .collect::<Result<_, _>>()?;
                let scope: HashSet<String> = params.iter().cloned().collect();
                let body_exprs: Vec<Expr> = body
                    .iter()
                    .map(|b| self.expr(b, &scope))
                    .collect::<Result<_, _>>()?;
                let body = if body_exprs.len() == 1 {
                    body_exprs.into_iter().next().expect("one body expression")
                } else {
                    Expr::Begin(body_exprs)
                };
                Ok(Definition {
                    name: name.clone(),
                    body: Expr::lam(params, body),
                })
            }
            _ => Err(ParseError::new("malformed define")),
        }
    }

    fn expr(&mut self, sexp: &Sexp, scope: &HashSet<String>) -> Result<Expr, ParseError> {
        match sexp {
            Sexp::Str(s) => Ok(Expr::Str(s.clone())),
            Sexp::Atom(atom) => self.atom(atom, scope),
            Sexp::List(items) => self.list(items, scope),
        }
    }

    fn atom(&mut self, atom: &str, scope: &HashSet<String>) -> Result<Expr, ParseError> {
        if atom == "#t" || atom == "#true" || atom == "true" {
            return Ok(Expr::Bool(true));
        }
        if atom == "#f" || atom == "#false" || atom == "false" {
            return Ok(Expr::Bool(false));
        }
        if atom == "empty" || atom == "null" {
            return Ok(Expr::Nil);
        }
        if atom == "•" || atom == "opaque" {
            let label = self.fresh_label();
            return Ok(Expr::Opaque(label));
        }
        if atom == "any/c" {
            return Ok(Expr::CAny);
        }
        if let Ok(n) = atom.parse::<i64>() {
            return Ok(Expr::Int(n));
        }
        if let Some(complex) = parse_complex(atom) {
            return Ok(complex);
        }
        // Bound names take precedence over everything else.
        if scope.contains(atom) || self.globals.contains(atom) {
            return Ok(Expr::var(atom));
        }
        // Struct-derived names.
        if let Some(expr) = self.struct_reference(atom) {
            return Ok(expr);
        }
        // Primitives referenced as values are eta-expanded.
        if let Some(prim) = Prim::from_name(atom) {
            let arity = prim.arity().unwrap_or(2);
            let params: Vec<String> = (0..arity).map(|i| format!("x{i}")).collect();
            let args: Vec<Expr> = params.iter().map(Expr::var).collect();
            let label = self.fresh_label();
            return Ok(Expr::lam(params, Expr::Prim(prim, args, label)));
        }
        Ok(Expr::var(atom))
    }

    fn struct_reference(&mut self, atom: &str) -> Option<Expr> {
        // Constructor.
        if let Some(def) = self.structs.get(atom).cloned() {
            let params: Vec<String> = def.fields.clone();
            let args: Vec<Expr> = params.iter().map(Expr::var).collect();
            return Some(Expr::lam(params, Expr::StructMake(def.name, args)));
        }
        // Predicate `name?`.
        if let Some(name) = atom.strip_suffix('?') {
            if self.structs.contains_key(name) {
                return Some(Expr::lam(
                    vec!["x"],
                    Expr::StructPred(name.to_string(), Box::new(Expr::var("x"))),
                ));
            }
        }
        // Accessor `name-field`.
        for (name, def) in &self.structs {
            if let Some(field) = atom.strip_prefix(&format!("{name}-")) {
                if let Some(index) = def.fields.iter().position(|f| f == field) {
                    let label = Label(self.next_label);
                    self.next_label += 1;
                    return Some(Expr::lam(
                        vec!["x"],
                        Expr::StructGet(name.clone(), index, Box::new(Expr::var("x")), label),
                    ));
                }
            }
        }
        None
    }

    #[allow(clippy::too_many_lines)]
    fn list(&mut self, items: &[Sexp], scope: &HashSet<String>) -> Result<Expr, ParseError> {
        let Some(head) = items.first() else {
            return Err(ParseError::new("empty application"));
        };
        if let Sexp::Atom(keyword) = head {
            let shadowed = scope.contains(keyword) || self.globals.contains(keyword);
            if !shadowed {
                match keyword.as_str() {
                    "quote" => return self.quoted(&items[1]),
                    "lambda" | "λ" => return self.lambda(items, scope),
                    "if" => {
                        let [_, c, t, e] = items else {
                            return Err(ParseError::new("if expects three sub-expressions"));
                        };
                        return Ok(Expr::ite(
                            self.expr(c, scope)?,
                            self.expr(t, scope)?,
                            self.expr(e, scope)?,
                        ));
                    }
                    "let" | "let*" | "letrec" => return self.let_form(keyword, items, scope),
                    "cond" => return self.cond(&items[1..], scope),
                    "when" | "unless" => return self.when_unless(keyword, items, scope),
                    "and" => {
                        return Ok(Expr::And(self.expr_list(&items[1..], scope)?));
                    }
                    "or" => {
                        return Ok(Expr::Or(self.expr_list(&items[1..], scope)?));
                    }
                    "begin" => {
                        return Ok(Expr::Begin(self.expr_list(&items[1..], scope)?));
                    }
                    "opaque" | "•" => {
                        let label = self.fresh_label();
                        return Ok(Expr::Opaque(label));
                    }
                    "->" => {
                        if items.len() < 2 {
                            return Err(ParseError::new("-> needs a range contract"));
                        }
                        let doms = self.expr_list(&items[1..items.len() - 1], scope)?;
                        let rng = self.expr(&items[items.len() - 1], scope)?;
                        return Ok(Expr::CArrow(doms, Box::new(rng)));
                    }
                    "and/c" => return Ok(Expr::CAnd(self.expr_list(&items[1..], scope)?)),
                    "or/c" => return Ok(Expr::COr(self.expr_list(&items[1..], scope)?)),
                    "cons/c" => {
                        let [_, car, cdr] = items else {
                            return Err(ParseError::new("cons/c expects two contracts"));
                        };
                        return Ok(Expr::CCons(
                            Box::new(self.expr(car, scope)?),
                            Box::new(self.expr(cdr, scope)?),
                        ));
                    }
                    "listof" | "list/c" => {
                        let [_, element] = items else {
                            return Err(ParseError::new("listof expects one contract"));
                        };
                        return Ok(Expr::CListOf(Box::new(self.expr(element, scope)?)));
                    }
                    "one-of/c" => return Ok(Expr::COneOf(self.expr_list(&items[1..], scope)?)),
                    "list" => {
                        // (list a b c) → (cons a (cons b (cons c '())))
                        let mut expr = Expr::Nil;
                        for item in items[1..].iter().rev() {
                            let label = self.fresh_label();
                            expr =
                                Expr::Prim(Prim::Cons, vec![self.expr(item, scope)?, expr], label);
                        }
                        return Ok(expr);
                    }
                    name => {
                        // Struct constructor in head position.
                        if let Some(def) = self.structs.get(name).cloned() {
                            let args = self.expr_list(&items[1..], scope)?;
                            if args.len() != def.fields.len() {
                                return Err(ParseError::new(format!(
                                    "constructor {name} expects {} fields",
                                    def.fields.len()
                                )));
                            }
                            return Ok(Expr::StructMake(def.name, args));
                        }
                        if let Some(pred) = name.strip_suffix('?') {
                            if self.structs.contains_key(pred) && items.len() == 2 {
                                let inner = self.expr(&items[1], scope)?;
                                return Ok(Expr::StructPred(pred.to_string(), Box::new(inner)));
                            }
                        }
                        if let Some(expr) = self.struct_accessor_app(name, items, scope)? {
                            return Ok(expr);
                        }
                        if let Some(prim) = Prim::from_name(name) {
                            let args = self.expr_list(&items[1..], scope)?;
                            if let Some(expected) = prim.arity() {
                                if args.len() != expected {
                                    return Err(ParseError::new(format!(
                                        "`{name}` expects {expected} argument(s), got {}",
                                        args.len()
                                    )));
                                }
                            }
                            let label = self.fresh_label();
                            return Ok(Expr::Prim(prim, args, label));
                        }
                    }
                }
            }
        }
        // Plain application.
        let function = self.expr(head, scope)?;
        let args = self.expr_list(&items[1..], scope)?;
        Ok(Expr::app(function, args))
    }

    fn struct_accessor_app(
        &mut self,
        name: &str,
        items: &[Sexp],
        scope: &HashSet<String>,
    ) -> Result<Option<Expr>, ParseError> {
        let found = self.structs.iter().find_map(|(struct_name, def)| {
            name.strip_prefix(&format!("{struct_name}-"))
                .and_then(|field| {
                    def.fields
                        .iter()
                        .position(|f| f == field)
                        .map(|index| (struct_name.clone(), index))
                })
        });
        let Some((struct_name, index)) = found else {
            return Ok(None);
        };
        if items.len() != 2 {
            return Err(ParseError::new(format!("{name} expects one argument")));
        }
        let inner = self.expr(&items[1], scope)?;
        let label = self.fresh_label();
        Ok(Some(Expr::StructGet(
            struct_name,
            index,
            Box::new(inner),
            label,
        )))
    }

    fn expr_list(
        &mut self,
        items: &[Sexp],
        scope: &HashSet<String>,
    ) -> Result<Vec<Expr>, ParseError> {
        items.iter().map(|i| self.expr(i, scope)).collect()
    }

    fn quoted(&mut self, sexp: &Sexp) -> Result<Expr, ParseError> {
        match sexp {
            Sexp::Str(s) => Ok(Expr::Str(s.clone())),
            Sexp::Atom(atom) => {
                if let Ok(n) = atom.parse::<i64>() {
                    Ok(Expr::Int(n))
                } else {
                    Ok(Expr::Str(atom.clone()))
                }
            }
            Sexp::List(items) => {
                let mut expr = Expr::Nil;
                for item in items.iter().rev() {
                    let label = self.fresh_label();
                    expr = Expr::Prim(Prim::Cons, vec![self.quoted(item)?, expr], label);
                }
                Ok(expr)
            }
        }
    }

    fn lambda(&mut self, items: &[Sexp], scope: &HashSet<String>) -> Result<Expr, ParseError> {
        let [_, Sexp::List(param_sexps), body @ ..] = items else {
            return Err(ParseError::new(
                "lambda expects a parameter list and a body",
            ));
        };
        if body.is_empty() {
            return Err(ParseError::new("lambda body is empty"));
        }
        let params: Vec<String> = param_sexps
            .iter()
            .map(|p| match p {
                Sexp::Atom(a) => Ok(a.clone()),
                _ => Err(ParseError::new("parameters must be identifiers")),
            })
            .collect::<Result<_, _>>()?;
        let mut inner = scope.clone();
        inner.extend(params.iter().cloned());
        let body_exprs = body
            .iter()
            .map(|b| self.expr(b, &inner))
            .collect::<Result<Vec<_>, _>>()?;
        let body = if body_exprs.len() == 1 {
            body_exprs.into_iter().next().expect("one body")
        } else {
            Expr::Begin(body_exprs)
        };
        Ok(Expr::lam(params, body))
    }

    fn let_form(
        &mut self,
        keyword: &str,
        items: &[Sexp],
        scope: &HashSet<String>,
    ) -> Result<Expr, ParseError> {
        let [_, Sexp::List(binding_sexps), body @ ..] = items else {
            return Err(ParseError::new("let expects bindings and a body"));
        };
        if body.is_empty() {
            return Err(ParseError::new("let body is empty"));
        }
        let recursive = keyword == "letrec";
        let sequential = keyword == "let*";
        let mut inner = scope.clone();
        let mut bindings = Vec::new();
        // Names of all bindings (for letrec scope).
        let names: Vec<String> = binding_sexps
            .iter()
            .map(|b| match b {
                Sexp::List(parts) => match parts.first() {
                    Some(Sexp::Atom(n)) => Ok(n.clone()),
                    _ => Err(ParseError::new("binding name must be an identifier")),
                },
                _ => Err(ParseError::new("bindings must be lists")),
            })
            .collect::<Result<_, _>>()?;
        if recursive {
            inner.extend(names.iter().cloned());
        }
        for (binding, name) in binding_sexps.iter().zip(&names) {
            let Sexp::List(parts) = binding else {
                return Err(ParseError::new("bindings must be lists"));
            };
            let [_, value] = parts.as_slice() else {
                return Err(ParseError::new("binding is [name expr]"));
            };
            let value_scope = if recursive || sequential {
                &inner
            } else {
                scope
            };
            let value = self.expr(value, value_scope)?;
            bindings.push((name.clone(), value));
            if sequential {
                inner.insert(name.clone());
            }
        }
        if !recursive && !sequential {
            inner.extend(names.iter().cloned());
        }
        let body_exprs = body
            .iter()
            .map(|b| self.expr(b, &inner))
            .collect::<Result<Vec<_>, _>>()?;
        let body = if body_exprs.len() == 1 {
            body_exprs.into_iter().next().expect("one body")
        } else {
            Expr::Begin(body_exprs)
        };
        Ok(Expr::Let {
            bindings,
            recursive,
            body: Box::new(body),
        })
    }

    fn cond(&mut self, clauses: &[Sexp], scope: &HashSet<String>) -> Result<Expr, ParseError> {
        match clauses.split_first() {
            None => Ok(Expr::Nil),
            Some((clause, rest)) => {
                let Sexp::List(parts) = clause else {
                    return Err(ParseError::new("cond clauses must be lists"));
                };
                let (test, body) = parts
                    .split_first()
                    .ok_or_else(|| ParseError::new("empty cond clause"))?;
                let body_exprs = self.expr_list(body, scope)?;
                let body_expr = match body_exprs.len() {
                    0 => Expr::Bool(true),
                    1 => body_exprs.into_iter().next().expect("one body"),
                    _ => Expr::Begin(body_exprs),
                };
                if matches!(test, Sexp::Atom(a) if a == "else") {
                    Ok(body_expr)
                } else {
                    Ok(Expr::ite(
                        self.expr(test, scope)?,
                        body_expr,
                        self.cond(rest, scope)?,
                    ))
                }
            }
        }
    }

    fn when_unless(
        &mut self,
        keyword: &str,
        items: &[Sexp],
        scope: &HashSet<String>,
    ) -> Result<Expr, ParseError> {
        let (test, body) = items[1..]
            .split_first()
            .ok_or_else(|| ParseError::new("when/unless needs a test"))?;
        let test = self.expr(test, scope)?;
        let body = Expr::Begin(self.expr_list(body, scope)?);
        Ok(if keyword == "when" {
            Expr::ite(test, body, Expr::Bool(false))
        } else {
            Expr::ite(test, Expr::Bool(false), body)
        })
    }
}

fn parse_complex(atom: &str) -> Option<Expr> {
    let body = atom.strip_suffix('i')?;
    // Find the sign separating real and imaginary parts (skip a leading sign).
    let split = body
        .char_indices()
        .skip(1)
        .find(|(_, c)| *c == '+' || *c == '-')
        .map(|(i, _)| i)?;
    let re: i64 = body[..split].parse().ok()?;
    let im_str = &body[split..];
    let im: i64 = if im_str == "+" {
        1
    } else if im_str == "-" {
        -1
    } else {
        im_str.parse().ok()?
    };
    Some(Expr::Complex(re, im))
}

/// Parses a program with a fresh parser, returning the program and the
/// struct declarations it contains.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_program(input: &str) -> Result<(Program, Vec<StructDef>), ParseError> {
    let mut parser = Parser::new();
    let program = parser.parse_program(input)?;
    let structs = parser.structs().cloned().collect();
    Ok((program, structs))
}

/// Parses a single expression with a fresh parser.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    Parser::new().parse_expr_str(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_parse() {
        assert_eq!(parse_expr("42"), Ok(Expr::Int(42)));
        assert_eq!(parse_expr("#t"), Ok(Expr::Bool(true)));
        assert_eq!(parse_expr("#f"), Ok(Expr::Bool(false)));
        assert_eq!(parse_expr("\"hi\""), Ok(Expr::Str("hi".to_string())));
        assert_eq!(parse_expr("0+1i"), Ok(Expr::Complex(0, 1)));
        assert_eq!(parse_expr("'()"), Ok(Expr::Nil));
        assert_eq!(parse_expr("'x"), Ok(Expr::Str("x".to_string())));
    }

    #[test]
    fn lambda_and_application_parse() {
        let e = parse_expr("((lambda (x y) (+ x y)) 1 2)").expect("parses");
        match e {
            Expr::App(f, args) => {
                assert!(matches!(*f, Expr::Lam { .. }));
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cond_desugars_to_if() {
        let e = parse_expr("(cond [(zero? x) 1] [else 2])").expect("parses");
        assert!(matches!(e, Expr::If(_, _, _)));
    }

    #[test]
    fn quoted_lists_become_cons_chains() {
        let e = parse_expr("'(1 2)").expect("parses");
        match e {
            Expr::Prim(Prim::Cons, parts, _) => {
                assert_eq!(parts[0], Expr::Int(1));
                assert!(matches!(&parts[1], Expr::Prim(Prim::Cons, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_predicates_eta_expand() {
        let e = parse_expr("number?").expect("parses");
        assert!(matches!(e, Expr::Lam { .. }));
    }

    #[test]
    fn contracts_parse() {
        let e = parse_expr("(-> number? (and/c integer? positive))").expect("parses");
        match e {
            Expr::CArrow(doms, rng) => {
                assert_eq!(doms.len(), 1);
                assert!(matches!(*rng, Expr::CAnd(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn modules_with_provides_and_defines_parse() {
        let source = r#"
        (module m
          (provide [f (-> integer? integer?)])
          (define (f x) (+ x 1)))
        "#;
        let (program, _) = parse_program(source).expect("parses");
        assert_eq!(program.modules.len(), 1);
        let module = &program.modules[0];
        assert_eq!(module.name, "m");
        assert_eq!(module.provides.len(), 1);
        assert_eq!(module.definitions.len(), 1);
    }

    #[test]
    fn structs_generate_constructors_and_accessors() {
        let source = r#"
        (module m
          (struct posn (x y))
          (provide [dist (-> posn? integer?)])
          (define (dist p) (+ (posn-x p) (posn-y p))))
        "#;
        let (program, structs) = parse_program(source).expect("parses");
        assert_eq!(structs.len(), 1);
        let def = &program.modules[0].definitions[0];
        let mut saw_get = false;
        def.body.walk(&mut |e| {
            if matches!(e, Expr::StructGet(name, _, _, _) if name == "posn") {
                saw_get = true;
            }
        });
        assert!(saw_get);
    }

    #[test]
    fn defined_names_shadow_primitives() {
        let source = r#"
        (module m
          (provide [max (-> integer? integer? integer?)])
          (define (max a b) (if (< a b) b a))
          (define (use x) (max x 0)))
        "#;
        let (program, _) = parse_program(source).expect("parses");
        let use_def = &program.modules[0].definitions[1];
        let mut saw_var_max = false;
        use_def.body.walk(&mut |e| {
            if let Expr::App(f, _) = e {
                if matches!(f.as_ref(), Expr::Var(n) if n == "max") {
                    saw_var_max = true;
                }
            }
        });
        assert!(saw_var_max, "max should resolve to the user definition");
    }

    #[test]
    fn bare_definitions_become_the_main_module() {
        let source = "(define (f x) x) (provide [f any/c])";
        let (program, _) = parse_program(source).expect("parses");
        assert_eq!(program.modules[0].name, "main");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_expr("(").is_err());
        assert!(parse_expr("()").is_err());
        assert!(parse_expr("(lambda x)").is_err());
        assert!(parse_program("").is_err());
        assert!(parse_expr("(car 1 2)").is_err());
    }
}
