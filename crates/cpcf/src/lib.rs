//! # cpcf — Contract PCF and soft contract verification with counterexamples
//!
//! This crate scales the counterexample-generation technique of *“Relatively
//! Complete Counterexamples for Higher-Order Programs”* (Nguyễn & Van Horn,
//! PLDI 2015) from the typed core calculus (see the `spcf` crate) to an
//! untyped, higher-order language with the features the paper's evaluation
//! needs (§4–§5):
//!
//! * dynamic typing with run-time tag tests (`number?`, `procedure?`, …) and
//!   a slice of the numeric tower including exact complex numbers;
//! * user-defined structures (`struct`), pairs and lists;
//! * first-class, higher-order contracts (`->`, `and/c`, `or/c`, `cons/c`,
//!   `listof`, `one-of/c`, `any/c`, flat predicates) with blame;
//! * mutable boxes;
//! * a module system with contracted exports (`provide`).
//!
//! The analysis ([`analyze`]) plays the role of the paper's SCV tool: for
//! each contracted export it synthesizes the most general unknown context
//! allowed by the contract, executes the module symbolically against it,
//! and, at every error blamed on the module, asks the first-order solver
//! (the `folic` crate) for a model of the heap, reconstructs concrete —
//! possibly higher-order — inputs, re-runs them concretely, and reports a
//! validated [`Counterexample`].
//!
//! ## Architecture
//!
//! * [`syntax`] / [`parse`] — the CPCF AST and its s-expression surface
//!   syntax.
//! * [`heap`] — the symbolic heap. Every mutation that can affect the
//!   heap's first-order encoding is recorded in a **constraint journal**
//!   ([`heap::JournalEvent`]) with a running fingerprint; a branch-cloned
//!   heap extends its parent's journal, so consumers can compute exactly
//!   the delta between two states on the same path. `Heap::clone` is an
//!   O(1) snapshot: the stores are persistent copy-on-write maps
//!   ([`pmap`]) and the journal an `Arc`-shared chunk chain, so the
//!   evaluator's pervasive state splits share structure instead of deep
//!   copying.
//! * [`pmap`] — the persistent map (path-copying AVL over `Arc` nodes)
//!   backing the heap, plus the thread-local sharing counters
//!   ([`sharing_totals`]) that make the copy-on-write machinery's work
//!   observable in [`SessionStats`] and the bench reports.
//! * [`prove`] — the prover. [`ProverSession`] is a *stateful, incremental*
//!   query engine: it keeps one live `folic` solver whose assertion stack
//!   mirrors a journal prefix, asserts only unseen journal suffixes
//!   (bracketing branch-local state in `push`/`pop` scopes), and memoizes
//!   `(heap fingerprint, query) → Proof` verdicts. The
//!   [`ProveConfig::fresh_per_query`] ablation restores the original
//!   solver-per-query engine for differential testing, and
//!   [`SessionStats`] makes the saving measurable.
//! * [`eval`] — the symbolic evaluator, split by concern: `eval` (the
//!   dispatcher and continuation plumbing), `eval::branch` (truthiness, tag
//!   predicates, structural refinement), `eval::apply` (application and the
//!   demonic context), `eval::contracts` (monitoring and blame) and
//!   `eval::prims` (primitives and symbolic arithmetic). The evaluation
//!   context ([`Ctx`]) threads the prover session mutably through all of
//!   them, so neither it nor the option types are `Copy`.
//! * [`cex`] — counterexample reconstruction from a solver model.
//! * [`analyze`] — the driver, split into context synthesis, per-export
//!   analysis and a work-stealing scheduler that shards exports across
//!   [`AnalyzeOptions::workers`] threads, one long-lived [`ProverSession`]
//!   per worker. A [`SharedVerdictCache`] lets verdicts flow between
//!   workers and across runs (e.g. the correct/faulty variants of a
//!   benchmark). [`ModuleReport`] carries the aggregated and per-worker
//!   [`SessionStats`] so harnesses can report solver work per benchmark.
//!   Alongside verdicts, workers exchange **theory lemmas** through a
//!   [`SharedLemmaPool`] (atom ids are process-global in `folic`, so a
//!   lemma is meaningful in every worker); `CPCF_LEMMA_SHARING=off` is the
//!   ablation that keeps every session's lemmas private.
//! * [`store`] — warm starts across *processes*: an append-only,
//!   content-addressed on-disk store ([`AnalysisStore`]) persisting proved
//!   verdicts (keyed by heap fingerprint), theory lemmas (by atom content)
//!   and per-export verdicts keyed by a dependency-cone hash
//!   ([`analyze::export_cone_hash`]). A [`SharedVerdictCache`] built
//!   [`with_store`](SharedVerdictCache::with_store) gains the disk tier;
//!   [`AnalyzeOptions::incremental`] skips exports whose cone hash already
//!   has a stored verdict. Schema-versioned, engine-fingerprinted
//!   ([`EngineFingerprint`]) and CRC-framed: a mismatched, truncated or
//!   corrupted file degrades to a cold start, never to a wrong verdict.
//!
//! ## Example
//!
//! ```
//! use cpcf::{analyze_source, ExportAnalysis};
//!
//! let report = analyze_source(
//!     r#"
//!     (module div100
//!       (provide [f (-> integer? integer?)])
//!       (define (f n) (/ 1 (- 100 n))))
//!     "#,
//! )
//! .expect("parses");
//!
//! match &report.exports[0].1 {
//!     ExportAnalysis::Counterexample(cex) => {
//!         assert!(cex.validated);
//!         // The breaking input is exactly 100 — the case random testing
//!         // misses with its default small-integer generators (§5.2).
//!     }
//!     other => panic!("expected a counterexample, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod cex;
pub mod eval;
pub mod heap;
pub mod numeric;
pub mod parse;
pub mod pmap;
pub mod prove;
pub mod store;
pub mod syntax;

pub use analyze::{
    analyze, analyze_module, analyze_source, analyze_source_with, default_workers, resolve_workers,
    AnalyzeOptions, ExportAnalysis, ModuleReport,
};
pub use cex::Counterexample;
pub use eval::{Ctx, EvalOptions, Outcome};
pub use folic::{default_lemma_sharing, SharedLemmaPool};
pub use heap::{CRefinement, ContractVal, Env, Heap, Loc, SVal, Tag};
pub use numeric::Number;
pub use parse::{parse_expr, parse_program, ParseError, Parser};
pub use pmap::{sharing_totals, PMap, SharingStats};
pub use prove::{default_prove_mode, ProveConfig, ProverSession, SessionStats, SharedVerdictCache};
pub use store::{AnalysisStore, EngineFingerprint, StoreCounters};
pub use syntax::{CBlame, Definition, Expr, Label, Module, Prim, Program, Provide, StructDef};
