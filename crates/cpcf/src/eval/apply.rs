//! Function application: closures, guarded (contracted) functions, and the
//! paper's demonic-context rules for opaque functions and escaped values.
//!
//! Havoc and opaque application are the evaluator's most snapshot-hungry
//! sites — every demonic interaction forks the heap — and rely on
//! `Heap::clone` being an O(1) copy-on-write snapshot.

use folic::Proof;

use crate::heap::{extend_env, CRefinement, Heap, Loc, SVal, Tag};
use crate::syntax::{CBlame, Label};

use super::contracts::{monitor, monitor_args};
use super::{eval, Ctx, Outcome};

/// Applies the value at `function_loc` to `args`.
pub fn apply(
    ctx: &mut Ctx,
    caller: &str,
    function_loc: Loc,
    args: &[Loc],
    heap: &Heap,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    if !ctx.tick() {
        return vec![(Outcome::Timeout, heap.clone())];
    }
    match heap.get(function_loc).clone() {
        SVal::Closure {
            params,
            body,
            env,
            owner,
        } => {
            if params.len() != args.len() {
                return vec![(
                    Outcome::Err(CBlame {
                        party: caller.to_string(),
                        message: format!(
                            "arity mismatch: expected {} arguments, got {}",
                            params.len(),
                            args.len()
                        ),
                        label,
                    }),
                    heap.clone(),
                )];
            }
            let extended = extend_env(&env, params.into_iter().zip(args.iter().copied()));
            eval(ctx, &extended, &owner, &body, heap)
        }
        SVal::Guarded {
            doms,
            rng,
            inner,
            pos,
            neg,
            label: mon_label,
        } => {
            if doms.len() != args.len() {
                return vec![(
                    Outcome::Err(CBlame {
                        party: neg.clone(),
                        message: format!(
                            "arity mismatch on contracted function: expected {}, got {}",
                            doms.len(),
                            args.len()
                        ),
                        label: mon_label,
                    }),
                    heap.clone(),
                )];
            }
            // Monitor each argument against its domain contract with the
            // blame parties swapped, then run the inner function, then
            // monitor the result against the range contract.
            monitor_args(
                ctx,
                &doms,
                args,
                &neg,
                &pos,
                mon_label,
                heap,
                Vec::new(),
                &mut |ctx, monitored, heap| {
                    let mut out = Vec::new();
                    for (outcome, inner_heap) in apply(ctx, caller, inner, &monitored, &heap, label)
                    {
                        match outcome {
                            Outcome::Val(result) => out.extend(monitor(
                                ctx,
                                rng,
                                result,
                                &pos,
                                &neg,
                                mon_label,
                                &inner_heap,
                            )),
                            other => out.push((other, inner_heap)),
                        }
                    }
                    out
                },
            )
        }
        SVal::Opaque { .. } => apply_opaque(ctx, caller, function_loc, args, heap, label),
        _ => vec![(
            Outcome::Err(CBlame {
                party: caller.to_string(),
                message: "application of a non-procedure".to_string(),
                label,
            }),
            heap.clone(),
        )],
    }
}

/// Applies an opaque (unknown) function: the paper's demonic-context rules
/// adapted to the untyped setting.
fn apply_opaque(
    ctx: &mut Ctx,
    caller: &str,
    function_loc: Loc,
    args: &[Loc],
    heap: &Heap,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    let blame = CBlame {
        party: caller.to_string(),
        message: "application of a value that may not be a procedure".to_string(),
        label,
    };
    let mut outcomes = Vec::new();
    match ctx.prover.prove_tag(heap, function_loc, &Tag::Procedure) {
        Proof::Refuted => return vec![(Outcome::Err(blame), heap.clone())],
        Proof::Ambiguous => {
            let mut no = heap.clone();
            no.refine(function_loc, CRefinement::IsNot(Tag::Procedure));
            outcomes.push((Outcome::Err(blame), no));
        }
        Proof::Proved => {}
    }

    // The function is (assumed) a procedure: refine and produce a result.
    let mut base = heap.clone();
    if !matches!(
        ctx.prover.prove_tag(&base, function_loc, &Tag::Procedure),
        Proof::Proved
    ) {
        base.refine(function_loc, CRefinement::Is(Tag::Procedure));
    }

    // Memoised result for a previously seen single simple argument.
    if ctx.options.use_case_maps && args.len() == 1 && is_simple(&base, args[0]) {
        if let SVal::Opaque { entries, .. } = base.get(function_loc) {
            if let Some((_, result)) = entries.iter().find(|(a, _)| *a == args[0]) {
                outcomes.push((Outcome::Val(*result), base));
                return outcomes;
            }
        }
        let result = base.alloc(SVal::opaque());
        if let SVal::Opaque {
            refinements,
            entries,
        } = base.get(function_loc).clone()
        {
            let mut entries = entries;
            entries.push((args[0], result));
            base.set(
                function_loc,
                SVal::Opaque {
                    refinements,
                    entries,
                },
            );
        }
        outcomes.push((Outcome::Val(result), base.clone()));
    } else {
        let result = base.alloc(SVal::opaque());
        outcomes.push((Outcome::Val(result), base.clone()));
    }

    // Demonic exploration: the unknown function may use its behavioural
    // arguments arbitrarily; errors found that way are real errors of the
    // escaping values' owners.
    let havoc_depth = ctx.options.havoc_depth;
    if havoc_depth > 0 {
        for &arg in args {
            for (outcome, havoc_heap) in havoc(ctx, caller, arg, &base, havoc_depth) {
                match outcome {
                    Outcome::Err(_) | Outcome::Timeout => outcomes.push((outcome, havoc_heap)),
                    Outcome::Val(_) => {
                        // The exploration finished without an error: the
                        // unknown context then returns an unknown value.
                        let mut h = havoc_heap;
                        let result = h.alloc(SVal::opaque());
                        outcomes.push((Outcome::Val(result), h));
                    }
                }
            }
        }
    }
    outcomes
}

fn is_simple(heap: &Heap, loc: Loc) -> bool {
    matches!(
        heap.get(loc),
        SVal::Num(_) | SVal::Bool(_) | SVal::Str(_) | SVal::Nil | SVal::Opaque { .. }
    )
}

/// The demonic context: explores a value that escaped to unknown code.
/// Procedures are applied to fresh opaque arguments; pairs, boxes and
/// structs are explored component-wise.
#[allow(clippy::only_used_in_recursion)] // `caller` names the blamed party for future rules
pub fn havoc(
    ctx: &mut Ctx,
    caller: &str,
    loc: Loc,
    heap: &Heap,
    depth: u32,
) -> Vec<(Outcome, Heap)> {
    if depth == 0 || !ctx.tick() {
        return vec![(Outcome::Val(loc), heap.clone())];
    }
    match heap.get(loc).clone() {
        SVal::Closure { params, .. } => {
            let mut heap = heap.clone();
            let args: Vec<Loc> = (0..params.len())
                .map(|_| heap.alloc(SVal::opaque()))
                .collect();
            let mut out = Vec::new();
            for (outcome, branch_heap) in apply(ctx, "context", loc, &args, &heap, Label(u32::MAX))
            {
                match outcome {
                    Outcome::Val(result) => {
                        out.extend(havoc(ctx, caller, result, &branch_heap, depth - 1));
                    }
                    other => out.push((other, branch_heap)),
                }
            }
            out
        }
        SVal::Guarded { doms, .. } => {
            let mut heap = heap.clone();
            let args: Vec<Loc> = (0..doms.len())
                .map(|_| heap.alloc(SVal::opaque()))
                .collect();
            let mut out = Vec::new();
            for (outcome, branch_heap) in apply(ctx, "context", loc, &args, &heap, Label(u32::MAX))
            {
                match outcome {
                    Outcome::Val(result) => {
                        out.extend(havoc(ctx, caller, result, &branch_heap, depth - 1));
                    }
                    other => out.push((other, branch_heap)),
                }
            }
            out
        }
        SVal::Pair(car, cdr) => {
            let mut out = Vec::new();
            for (outcome, branch_heap) in havoc(ctx, caller, car, heap, depth - 1) {
                match outcome {
                    Outcome::Val(_) => out.extend(havoc(ctx, caller, cdr, &branch_heap, depth - 1)),
                    other => out.push((other, branch_heap)),
                }
            }
            out
        }
        SVal::StructVal { fields, .. } => {
            let mut states = vec![(Outcome::Val(loc), heap.clone())];
            for field in fields {
                let mut next = Vec::new();
                for (outcome, branch_heap) in states {
                    match outcome {
                        Outcome::Val(_) => {
                            next.extend(havoc(ctx, caller, field, &branch_heap, depth - 1));
                        }
                        other => next.push((other, branch_heap)),
                    }
                }
                states = next;
            }
            states
        }
        SVal::BoxVal(inner) => havoc(ctx, caller, inner, heap, depth - 1),
        _ => vec![(Outcome::Val(loc), heap.clone())],
    }
}
