//! State-splitting judgements: truthiness, tag predicates, structural
//! refinement of opaque values (§4.2) and structural equality — the places
//! where one symbolic state becomes several, each refined by what was
//! learned on its branch.

use folic::Proof;

use crate::heap::{CRefinement, Heap, Loc, SVal, Tag};
use crate::syntax::{CBlame, Label};

use super::{alloc_value, Ctx, Outcome};

/// The possible truth values of the value at `loc` (Racket-style: only `#f`
/// is false).
///
/// An opaque value only splits when it could actually be `#f`: besides the
/// direct `IsFalse`/`IsTruthy` refinements, any value carrying a numeric
/// refinement is a number (hence truthy), and the prover is consulted for
/// the rest — a location provably not a boolean (e.g. refined `Is` some
/// disjoint tag, or `IsNot(boolean?)`) cannot be `#f`, so the contradictory
/// falsy branch is never materialized.
pub fn truthiness(ctx: &mut Ctx, heap: &Heap, loc: Loc) -> Vec<(bool, Heap)> {
    match heap.get(loc) {
        SVal::Bool(false) => vec![(false, heap.clone())],
        SVal::Opaque { refinements, .. } => {
            if refinements.contains(&CRefinement::IsFalse) {
                return vec![(false, heap.clone())];
            }
            if refinements.contains(&CRefinement::IsTruthy)
                || refinements
                    .iter()
                    .any(|r| matches!(r, CRefinement::NumCmp(_, _)))
            {
                return vec![(true, heap.clone())];
            }
            if ctx.prover.prove_tag(heap, loc, &Tag::Boolean) == Proof::Refuted {
                return vec![(true, heap.clone())];
            }
            let mut truthy = heap.clone();
            truthy.refine(loc, CRefinement::IsTruthy);
            let mut falsy = heap.clone();
            falsy.set(loc, SVal::Bool(false));
            vec![(true, truthy), (false, falsy)]
        }
        _ => vec![(true, heap.clone())],
    }
}

/// A tag predicate applied to `loc`: returns boolean outcomes, structurally
/// refining opaque values on the positive branch where that pins down their
/// shape.
pub fn tag_predicate(ctx: &mut Ctx, heap: &Heap, loc: Loc, tag: &Tag) -> Vec<(Outcome, Heap)> {
    match ctx.prover.prove_tag(heap, loc, tag) {
        Proof::Proved => alloc_value(heap, SVal::Bool(true)),
        Proof::Refuted => alloc_value(heap, SVal::Bool(false)),
        Proof::Ambiguous => {
            let mut yes = heap.clone();
            refine_to_tag(ctx, &mut yes, loc, tag);
            let mut no = heap.clone();
            no.refine(loc, CRefinement::IsNot(tag.clone()));
            let mut out = alloc_value(&yes, SVal::Bool(true));
            out.extend(alloc_value(&no, SVal::Bool(false)));
            out
        }
    }
}

/// Refines the opaque value at `loc` to have the given tag, replacing it
/// structurally when the tag determines a shape (§4.2).
pub fn refine_to_tag(ctx: &mut Ctx, heap: &mut Heap, loc: Loc, tag: &Tag) {
    match tag {
        Tag::Pair => {
            let car = heap.alloc(SVal::opaque());
            let cdr = heap.alloc(SVal::opaque());
            heap.set(loc, SVal::Pair(car, cdr));
        }
        Tag::Null => heap.set(loc, SVal::Nil),
        Tag::BoxT => {
            let inner = heap.alloc(SVal::opaque());
            heap.set(loc, SVal::BoxVal(inner));
        }
        Tag::Struct(name) => {
            let field_count = ctx.structs.get(name).map(|d| d.fields.len()).unwrap_or(0);
            let fields = (0..field_count)
                .map(|_| heap.alloc(SVal::opaque()))
                .collect();
            heap.set(
                loc,
                SVal::StructVal {
                    tag: name.clone(),
                    fields,
                },
            );
        }
        other => heap.refine(loc, CRefinement::Is(other.clone())),
    }
}

/// Projects a struct field, branching on whether an opaque value is an
/// instance of the struct.
#[allow(clippy::too_many_arguments)]
pub(super) fn struct_project(
    ctx: &mut Ctx,
    owner: &str,
    heap: &Heap,
    loc: Loc,
    name: &str,
    index: usize,
    field_count: usize,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    let blame = CBlame {
        party: owner.to_string(),
        message: format!("{name}-{index}: expected a {name}"),
        label,
    };
    match heap.get(loc) {
        SVal::StructVal { tag, fields } if tag == name => match fields.get(index) {
            Some(field) => vec![(Outcome::Val(*field), heap.clone())],
            None => vec![(Outcome::Err(blame), heap.clone())],
        },
        SVal::Opaque { .. } => match ctx
            .prover
            .prove_tag(heap, loc, &Tag::Struct(name.to_string()))
        {
            Proof::Refuted => vec![(Outcome::Err(blame), heap.clone())],
            _ => {
                // Positive branch: refine to a struct with fresh fields.
                let mut yes = heap.clone();
                let fields: Vec<Loc> = (0..field_count.max(index + 1))
                    .map(|_| yes.alloc(SVal::opaque()))
                    .collect();
                let field = fields[index];
                yes.set(
                    loc,
                    SVal::StructVal {
                        tag: name.to_string(),
                        fields,
                    },
                );
                // Negative branch: blame.
                let mut no = heap.clone();
                no.refine(loc, CRefinement::IsNot(Tag::Struct(name.to_string())));
                vec![(Outcome::Val(field), yes), (Outcome::Err(blame), no)]
            }
        },
        _ => vec![(Outcome::Err(blame), heap.clone())],
    }
}

/// Structural equality of two concrete values; `None` when an opaque value
/// is involved.
pub fn values_equal(heap: &Heap, a: Loc, b: Loc) -> Option<bool> {
    if a == b {
        return Some(true);
    }
    match (heap.get(a), heap.get(b)) {
        (SVal::Opaque { .. }, _) | (_, SVal::Opaque { .. }) => None,
        (SVal::Num(x), SVal::Num(y)) => Some(x.num_eq(*y)),
        (SVal::Bool(x), SVal::Bool(y)) => Some(x == y),
        (SVal::Str(x), SVal::Str(y)) => Some(x == y),
        (SVal::Nil, SVal::Nil) => Some(true),
        (SVal::Pair(a1, a2), SVal::Pair(b1, b2)) => {
            match (values_equal(heap, *a1, *b1), values_equal(heap, *a2, *b2)) {
                (Some(true), Some(true)) => Some(true),
                (Some(false), _) | (_, Some(false)) => Some(false),
                _ => None,
            }
        }
        (
            SVal::StructVal {
                tag: t1,
                fields: f1,
            },
            SVal::StructVal {
                tag: t2,
                fields: f2,
            },
        ) => {
            if t1 != t2 || f1.len() != f2.len() {
                return Some(false);
            }
            let mut all = Some(true);
            for (x, y) in f1.iter().zip(f2.iter()) {
                match values_equal(heap, *x, *y) {
                    Some(true) => {}
                    Some(false) => return Some(false),
                    None => all = None,
                }
            }
            all
        }
        _ => Some(false),
    }
}
