//! Primitive operations: tag tests, pair/box/string operations, equality,
//! and concrete + symbolic arithmetic with division-by-zero branching.
//!
//! Division-by-zero and equality splits snapshot the heap per branch; like
//! all state splits this costs O(1) under the copy-on-write heap.

use folic::{CmpOp, Proof};

use crate::heap::{CRefinement, CSymExpr, Heap, Loc, SVal, Tag};
use crate::numeric::Number;
use crate::syntax::{CBlame, Label, Prim};

use super::branch::{refine_to_tag, tag_predicate, truthiness, values_equal};
use super::{alloc_value, Ctx, Outcome};

fn operand(heap: &Heap, loc: Loc) -> CSymExpr {
    match heap.int_at(loc) {
        Some(n) => CSymExpr::int(n),
        None => CSymExpr::loc(loc),
    }
}

/// Applies a primitive operation.
pub fn apply_prim(
    ctx: &mut Ctx,
    owner: &str,
    prim: Prim,
    args: &[Loc],
    heap: &Heap,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    let blame = |message: String| CBlame {
        party: owner.to_string(),
        message,
        label,
    };
    match prim {
        Prim::IsNumber => tag_predicate(ctx, heap, args[0], &Tag::Number),
        Prim::IsReal => tag_predicate(ctx, heap, args[0], &Tag::Real),
        Prim::IsInteger => tag_predicate(ctx, heap, args[0], &Tag::Integer),
        Prim::IsProcedure => tag_predicate(ctx, heap, args[0], &Tag::Procedure),
        Prim::IsPair => tag_predicate(ctx, heap, args[0], &Tag::Pair),
        Prim::IsNull => tag_predicate(ctx, heap, args[0], &Tag::Null),
        Prim::IsBoolean => tag_predicate(ctx, heap, args[0], &Tag::Boolean),
        Prim::IsString => tag_predicate(ctx, heap, args[0], &Tag::StringT),
        Prim::IsBox => tag_predicate(ctx, heap, args[0], &Tag::BoxT),
        Prim::Not => truthiness(ctx, heap, args[0])
            .into_iter()
            .flat_map(|(is_true, branch_heap)| alloc_value(&branch_heap, SVal::Bool(!is_true)))
            .collect(),
        Prim::Cons => {
            let mut heap = heap.clone();
            let loc = heap.alloc(SVal::Pair(args[0], args[1]));
            vec![(Outcome::Val(loc), heap)]
        }
        Prim::Car | Prim::Cdr => pair_project(ctx, owner, prim, args[0], heap, label),
        Prim::Equal => match values_equal(heap, args[0], args[1]) {
            Some(result) => alloc_value(heap, SVal::Bool(result)),
            None => {
                let mut out = alloc_value(heap, SVal::Bool(true));
                out.extend(alloc_value(heap, SVal::Bool(false)));
                out
            }
        },
        Prim::Assert => truthiness(ctx, heap, args[0])
            .into_iter()
            .map(|(is_true, branch_heap)| {
                if is_true {
                    (Outcome::Val(args[0]), branch_heap)
                } else {
                    (
                        Outcome::Err(blame("assertion failed".to_string())),
                        branch_heap,
                    )
                }
            })
            .collect(),
        Prim::Raise => {
            let message = match heap.get(args[0]) {
                SVal::Str(s) => s.clone(),
                other => format!("{other}"),
            };
            vec![(
                Outcome::Err(blame(format!("error: {message}"))),
                heap.clone(),
            )]
        }
        Prim::MakeBox => {
            let mut heap = heap.clone();
            let loc = heap.alloc(SVal::BoxVal(args[0]));
            vec![(Outcome::Val(loc), heap)]
        }
        Prim::Unbox => match heap.get(args[0]).clone() {
            SVal::BoxVal(inner) => vec![(Outcome::Val(inner), heap.clone())],
            SVal::Opaque { .. } => {
                let mut yes = heap.clone();
                refine_to_tag(ctx, &mut yes, args[0], &Tag::BoxT);
                let inner = match yes.get(args[0]) {
                    SVal::BoxVal(inner) => *inner,
                    _ => unreachable!("refine_to_tag installs a box"),
                };
                let mut no = heap.clone();
                no.refine(args[0], CRefinement::IsNot(Tag::BoxT));
                vec![
                    (Outcome::Val(inner), yes),
                    (Outcome::Err(blame("unbox: expected a box".to_string())), no),
                ]
            }
            _ => vec![(
                Outcome::Err(blame("unbox: expected a box".to_string())),
                heap.clone(),
            )],
        },
        Prim::SetBox => match heap.get(args[0]).clone() {
            SVal::BoxVal(_) => {
                let mut heap = heap.clone();
                heap.set(args[0], SVal::BoxVal(args[1]));
                alloc_value(&heap, SVal::Nil)
            }
            _ => vec![(
                Outcome::Err(blame("set-box!: expected a box".to_string())),
                heap.clone(),
            )],
        },
        Prim::StringLength => match heap.get(args[0]) {
            SVal::Str(s) => alloc_value(heap, SVal::Num(Number::Int(s.len() as i64))),
            SVal::Opaque { .. } => {
                let proof = ctx.prover.prove_tag(heap, args[0], &Tag::StringT);
                let mut outcomes = Vec::new();
                if proof != Proof::Refuted {
                    let mut result_heap = heap.clone();
                    if proof != Proof::Proved {
                        result_heap.refine(args[0], CRefinement::Is(Tag::StringT));
                    }
                    let result = result_heap.alloc_fresh_opaque();
                    result_heap.refine(result, CRefinement::Is(Tag::Integer));
                    result_heap.refine(result, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(0)));
                    outcomes.push((Outcome::Val(result), result_heap));
                }
                if proof != Proof::Proved {
                    let mut no = heap.clone();
                    no.refine(args[0], CRefinement::IsNot(Tag::StringT));
                    outcomes.push((
                        Outcome::Err(blame("string-length: expected a string".to_string())),
                        no,
                    ));
                }
                outcomes
            }
            _ => vec![(
                Outcome::Err(blame("string-length: expected a string".to_string())),
                heap.clone(),
            )],
        },
        Prim::IsZero => numeric_comparison(ctx, owner, Prim::NumEq, args[0], None, heap, label),
        Prim::NumEq | Prim::Lt | Prim::Le | Prim::Gt | Prim::Ge => {
            numeric_comparison(ctx, owner, prim, args[0], Some(args[1]), heap, label)
        }
        Prim::Add | Prim::Sub | Prim::Mul | Prim::Add1 | Prim::Sub1 | Prim::Div | Prim::Mod => {
            arithmetic(ctx, owner, prim, args, heap, label)
        }
    }
}

fn pair_project(
    ctx: &mut Ctx,
    owner: &str,
    prim: Prim,
    loc: Loc,
    heap: &Heap,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    let blame = CBlame {
        party: owner.to_string(),
        message: format!("{prim}: expected a pair"),
        label,
    };
    match heap.get(loc) {
        SVal::Pair(car, cdr) => {
            let field = if prim == Prim::Car { *car } else { *cdr };
            vec![(Outcome::Val(field), heap.clone())]
        }
        SVal::Opaque { .. } => match ctx.prover.prove_tag(heap, loc, &Tag::Pair) {
            Proof::Refuted => vec![(Outcome::Err(blame), heap.clone())],
            _ => {
                let mut yes = heap.clone();
                refine_to_tag(ctx, &mut yes, loc, &Tag::Pair);
                let (car, cdr) = match yes.get(loc) {
                    SVal::Pair(a, b) => (*a, *b),
                    _ => unreachable!("refine_to_tag installs a pair"),
                };
                let field = if prim == Prim::Car { car } else { cdr };
                let mut no = heap.clone();
                no.refine(loc, CRefinement::IsNot(Tag::Pair));
                vec![(Outcome::Val(field), yes), (Outcome::Err(blame), no)]
            }
        },
        _ => vec![(Outcome::Err(blame), heap.clone())],
    }
}

/// Ensures `loc` can be treated as an integer for symbolic arithmetic,
/// returning the feasible branches: `(is_real_integer, heap)`. The non-real
/// branch concretises the value to `0+1i` so counterexamples involving the
/// numeric tower (the `argmin` example) can be produced.
fn integer_branches(
    ctx: &mut Ctx,
    heap: &Heap,
    loc: Loc,
    allow_complex: bool,
) -> Vec<(bool, Heap)> {
    match heap.get(loc) {
        SVal::Num(n) => vec![(n.is_real(), heap.clone())],
        SVal::Opaque { .. } => match ctx.prover.prove_tag(heap, loc, &Tag::Real) {
            Proof::Proved => vec![(true, heap.clone())],
            Proof::Refuted => vec![(false, heap.clone())],
            Proof::Ambiguous => {
                let mut real = heap.clone();
                real.refine(loc, CRefinement::Is(Tag::Integer));
                let mut branches = vec![(true, real)];
                if allow_complex && ctx.prover.prove_tag(heap, loc, &Tag::Number) != Proof::Refuted
                {
                    let mut complex = heap.clone();
                    complex.set(loc, SVal::Num(Number::complex(0, 1)));
                    branches.push((false, complex));
                }
                branches
            }
        },
        _ => vec![(false, heap.clone())],
    }
}

#[allow(clippy::too_many_arguments)]
fn numeric_comparison(
    ctx: &mut Ctx,
    owner: &str,
    prim: Prim,
    left: Loc,
    right: Option<Loc>,
    heap: &Heap,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    let blame = CBlame {
        party: owner.to_string(),
        message: format!("{prim}: expected real numbers"),
        label,
    };
    let cmp = match prim {
        Prim::NumEq => CmpOp::Eq,
        Prim::Lt => CmpOp::Lt,
        Prim::Le => CmpOp::Le,
        Prim::Gt => CmpOp::Gt,
        Prim::Ge => CmpOp::Ge,
        _ => CmpOp::Eq,
    };
    // `=` works on all numbers, the orderings require reals.
    let needs_real = !matches!(prim, Prim::NumEq);
    let mut out = Vec::new();
    for (left_real, left_heap) in integer_branches(ctx, heap, left, needs_real) {
        if !left_real && needs_real {
            out.push((Outcome::Err(blame.clone()), left_heap));
            continue;
        }
        if !left_real && !needs_real {
            // Comparing a complex number for equality: decided concretely
            // when possible, otherwise both ways.
            out.extend(alloc_value(&left_heap, SVal::Bool(false)));
            continue;
        }
        let branches_right = match right {
            Some(right) => integer_branches(ctx, &left_heap, right, needs_real),
            None => vec![(true, left_heap.clone())],
        };
        for (right_real, branch_heap) in branches_right {
            if !right_real && needs_real {
                out.push((Outcome::Err(blame.clone()), branch_heap));
                continue;
            }
            if !right_real {
                out.extend(alloc_value(&branch_heap, SVal::Bool(false)));
                continue;
            }
            // Both sides (assumed) integers: decide or branch symbolically.
            let left_concrete = branch_heap.int_at(left);
            let right_concrete = match right {
                Some(r) => branch_heap.int_at(r),
                None => Some(0),
            };
            match (left_concrete, right_concrete) {
                (Some(a), Some(b)) => {
                    out.extend(alloc_value(&branch_heap, SVal::Bool(cmp.eval(a, b))));
                }
                _ => {
                    let (subject, subject_cmp, other_expr) = if branch_heap.int_at(left).is_none() {
                        let rhs = match right {
                            Some(r) => operand(&branch_heap, r),
                            None => CSymExpr::int(0),
                        };
                        (left, cmp, rhs)
                    } else {
                        let flipped = match cmp {
                            CmpOp::Eq => CmpOp::Eq,
                            CmpOp::Ne => CmpOp::Ne,
                            CmpOp::Lt => CmpOp::Gt,
                            CmpOp::Le => CmpOp::Ge,
                            CmpOp::Gt => CmpOp::Lt,
                            CmpOp::Ge => CmpOp::Le,
                        };
                        (
                            right.expect("symbolic side"),
                            flipped,
                            operand(&branch_heap, left),
                        )
                    };
                    match ctx
                        .prover
                        .prove_num(&branch_heap, subject, subject_cmp, &other_expr)
                    {
                        Proof::Proved => out.extend(alloc_value(&branch_heap, SVal::Bool(true))),
                        Proof::Refuted => out.extend(alloc_value(&branch_heap, SVal::Bool(false))),
                        Proof::Ambiguous => {
                            let mut yes = branch_heap.clone();
                            yes.refine(
                                subject,
                                CRefinement::NumCmp(subject_cmp, other_expr.clone()),
                            );
                            out.extend(alloc_value(&yes, SVal::Bool(true)));
                            let mut no = branch_heap.clone();
                            no.refine(
                                subject,
                                CRefinement::NumCmp(subject_cmp.negate(), other_expr),
                            );
                            out.extend(alloc_value(&no, SVal::Bool(false)));
                        }
                    }
                }
            }
        }
    }
    out
}

fn arithmetic(
    ctx: &mut Ctx,
    owner: &str,
    prim: Prim,
    args: &[Loc],
    heap: &Heap,
    label: Label,
) -> Vec<(Outcome, Heap)> {
    let blame = |message: String| CBlame {
        party: owner.to_string(),
        message,
        label,
    };
    // All-concrete fast path (covers complex arithmetic too).
    let concrete: Option<Vec<Number>> = args.iter().map(|&l| heap.num_at(l)).collect();
    if let Some(values) = concrete {
        return match concrete_arith(prim, &values) {
            Ok(result) => alloc_value(heap, SVal::Num(result)),
            Err(message) => vec![(Outcome::Err(blame(message)), heap.clone())],
        };
    }
    // Symbolic path: every opaque argument is assumed to be an integer (a
    // branch blaming non-numbers is produced when the tag is refutable).
    let mut branch_heaps = vec![heap.clone()];
    for &arg in args {
        let mut next = Vec::new();
        for branch_heap in branch_heaps {
            match branch_heap.get(arg) {
                SVal::Num(n) if n.is_real() => next.push(branch_heap),
                SVal::Num(_) => {
                    // Complex argument to integer-only symbolic arithmetic:
                    // only +,-,* support it and those were handled in the
                    // concrete path, so here the other operand is opaque;
                    // treat the operation as erroneous only for / and modulo.
                    next.push(branch_heap);
                }
                SVal::Opaque { .. } => {
                    match ctx.prover.prove_tag(&branch_heap, arg, &Tag::Number) {
                        Proof::Refuted => {}
                        _ => {
                            let mut yes = branch_heap.clone();
                            if ctx.prover.prove_tag(&yes, arg, &Tag::Integer) != Proof::Proved {
                                yes.refine(arg, CRefinement::Is(Tag::Integer));
                            }
                            next.push(yes);
                        }
                    }
                }
                _ => {}
            }
        }
        branch_heaps = next;
    }
    let mut out: Vec<(Outcome, Heap)> = Vec::new();
    // A branch blaming the operation when some argument may not be a number.
    for &arg in args {
        if matches!(heap.get(arg), SVal::Opaque { .. })
            && ctx.prover.prove_tag(heap, arg, &Tag::Number) != Proof::Proved
        {
            let mut bad = heap.clone();
            bad.refine(arg, CRefinement::IsNot(Tag::Number));
            out.push((
                Outcome::Err(blame(format!("{prim}: expected numbers"))),
                bad,
            ));
            break;
        }
    }
    for branch_heap in branch_heaps {
        match prim {
            Prim::Div | Prim::Mod => {
                let divisor = args[1];
                let zero = CRefinement::NumCmp(CmpOp::Eq, CSymExpr::int(0));
                match ctx
                    .prover
                    .prove_num(&branch_heap, divisor, CmpOp::Eq, &CSymExpr::int(0))
                {
                    Proof::Proved => out.push((
                        Outcome::Err(blame(format!("{prim}: division by zero"))),
                        branch_heap,
                    )),
                    Proof::Refuted => {
                        out.push(symbolic_arith_result(prim, args, branch_heap));
                    }
                    Proof::Ambiguous => {
                        let mut error_heap = branch_heap.clone();
                        if matches!(error_heap.get(divisor), SVal::Opaque { .. }) {
                            error_heap.refine(divisor, zero);
                        }
                        out.push((
                            Outcome::Err(blame(format!("{prim}: division by zero"))),
                            error_heap,
                        ));
                        let mut ok_heap = branch_heap.clone();
                        if matches!(ok_heap.get(divisor), SVal::Opaque { .. }) {
                            ok_heap
                                .refine(divisor, CRefinement::NumCmp(CmpOp::Ne, CSymExpr::int(0)));
                        }
                        out.push(symbolic_arith_result(prim, args, ok_heap));
                    }
                }
            }
            _ => out.push(symbolic_arith_result(prim, args, branch_heap)),
        }
    }
    out
}

fn symbolic_arith_result(prim: Prim, args: &[Loc], mut heap: Heap) -> (Outcome, Heap) {
    let expr = match prim {
        Prim::Add1 => CSymExpr::Add(
            Box::new(operand(&heap, args[0])),
            Box::new(CSymExpr::int(1)),
        ),
        Prim::Sub1 => CSymExpr::Sub(
            Box::new(operand(&heap, args[0])),
            Box::new(CSymExpr::int(1)),
        ),
        Prim::Add | Prim::Sub | Prim::Mul => {
            let mut iter = args.iter();
            let first = operand(&heap, *iter.next().expect("at least one argument"));
            iter.fold(first, |acc, &next| {
                let rhs = operand(&heap, next);
                match prim {
                    Prim::Add => CSymExpr::Add(Box::new(acc), Box::new(rhs)),
                    Prim::Sub => CSymExpr::Sub(Box::new(acc), Box::new(rhs)),
                    _ => CSymExpr::Mul(Box::new(acc), Box::new(rhs)),
                }
            })
        }
        Prim::Div => CSymExpr::Div(
            Box::new(operand(&heap, args[0])),
            Box::new(operand(&heap, args[1])),
        ),
        Prim::Mod => CSymExpr::Mod(
            Box::new(operand(&heap, args[0])),
            Box::new(operand(&heap, args[1])),
        ),
        _ => unreachable!("not an arithmetic primitive"),
    };
    let result = heap.alloc_fresh_opaque();
    heap.refine(result, CRefinement::Is(Tag::Integer));
    heap.refine(result, CRefinement::NumCmp(CmpOp::Eq, expr));
    (Outcome::Val(result), heap)
}

fn concrete_arith(prim: Prim, values: &[Number]) -> Result<Number, String> {
    match prim {
        Prim::Add1 => Ok(values[0].add(Number::Int(1))),
        Prim::Sub1 => Ok(values[0].sub(Number::Int(1))),
        Prim::Add => Ok(values.iter().fold(Number::Int(0), |a, b| a.add(*b))),
        Prim::Mul => Ok(values.iter().fold(Number::Int(1), |a, b| a.mul(*b))),
        Prim::Sub => {
            if values.len() == 1 {
                Ok(Number::Int(0).sub(values[0]))
            } else {
                Ok(values[1..].iter().fold(values[0], |a, b| a.sub(*b)))
            }
        }
        Prim::Div => values[0]
            .div(values[1])
            .ok_or_else(|| "/: division by zero or non-integer operands".to_string()),
        Prim::Mod => values[0]
            .rem(values[1])
            .ok_or_else(|| "modulo: division by zero or non-integer operands".to_string()),
        _ => Err(format!("{prim}: not an arithmetic primitive")),
    }
}
