//! Contract monitoring (§4): flat checks, higher-order wrapping with blame,
//! conjunction/disjunction, pair, list and literal-set contracts.
//!
//! Contract branches (or/c, flat-check outcomes) fork the heap via the O(1)
//! copy-on-write `Heap::clone`; each branch then writes only its own path's
//! refinements, sharing the rest of the state structurally.

use folic::Proof;

use crate::heap::{CRefinement, ContractVal, Heap, Loc, SVal, Tag};
use crate::syntax::{CBlame, Label};

use super::apply::apply;
use super::branch::{refine_to_tag, truthiness, values_equal};
use super::{Ctx, Outcome};

/// Continuation receiving the monitored argument locations of a guarded
/// application.
type MonitorCont<'a> = &'a mut dyn FnMut(&mut Ctx, Vec<Loc>, Heap) -> Vec<(Outcome, Heap)>;

/// Monitors the value at `value_loc` against the contract at `contract_loc`.
pub fn monitor(
    ctx: &mut Ctx,
    contract_loc: Loc,
    value_loc: Loc,
    pos: &str,
    neg: &str,
    label: Label,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    if !ctx.tick() {
        return vec![(Outcome::Timeout, heap.clone())];
    }
    let listof_depth = ctx.options.listof_depth;
    let blame = |message: String| CBlame {
        party: pos.to_string(),
        message,
        label,
    };
    match heap.get(contract_loc).clone() {
        SVal::Contract(ContractVal::Any) => vec![(Outcome::Val(value_loc), heap.clone())],
        SVal::Contract(ContractVal::Func { doms, rng }) => {
            match ctx.prover.prove_tag(heap, value_loc, &Tag::Procedure) {
                Proof::Refuted => vec![(
                    Outcome::Err(blame("expected a procedure".to_string())),
                    heap.clone(),
                )],
                proof => {
                    let mut outcomes = Vec::new();
                    if proof == Proof::Ambiguous {
                        let mut no = heap.clone();
                        no.refine(value_loc, CRefinement::IsNot(Tag::Procedure));
                        outcomes
                            .push((Outcome::Err(blame("expected a procedure".to_string())), no));
                    }
                    let mut yes = heap.clone();
                    if proof == Proof::Ambiguous {
                        yes.refine(value_loc, CRefinement::Is(Tag::Procedure));
                    }
                    let guarded = yes.alloc(SVal::Guarded {
                        doms,
                        rng,
                        inner: value_loc,
                        pos: pos.to_string(),
                        neg: neg.to_string(),
                        label,
                    });
                    outcomes.push((Outcome::Val(guarded), yes));
                    outcomes
                }
            }
        }
        SVal::Contract(ContractVal::And(parts)) => {
            monitor_all(ctx, &parts, value_loc, pos, neg, label, heap)
        }
        SVal::Contract(ContractVal::Or(parts)) => {
            monitor_or(ctx, &parts, value_loc, pos, neg, label, heap)
        }
        SVal::Contract(ContractVal::Cons(car_contract, cdr_contract)) => monitor_pair(
            ctx,
            car_contract,
            cdr_contract,
            value_loc,
            pos,
            neg,
            label,
            heap,
        ),
        SVal::Contract(ContractVal::ListOf(element)) => {
            monitor_listof(ctx, element, value_loc, pos, neg, label, heap, listof_depth)
        }
        SVal::Contract(ContractVal::OneOf(options)) => {
            monitor_one_of(ctx, &options, value_loc, pos, neg, label, heap)
        }
        SVal::Contract(ContractVal::Flat(predicate)) => {
            monitor_flat(ctx, predicate, value_loc, pos, label, heap)
        }
        // A procedure used directly as a contract is a flat contract.
        SVal::Closure { .. } | SVal::Guarded { .. } => {
            monitor_flat(ctx, contract_loc, value_loc, pos, label, heap)
        }
        // A literal value as a contract means equality with that value.
        other_value => {
            let holds = values_equal(heap, contract_loc, value_loc);
            match holds {
                Some(true) => vec![(Outcome::Val(value_loc), heap.clone())],
                Some(false) => vec![(
                    Outcome::Err(blame(format!("expected the literal {other_value}"))),
                    heap.clone(),
                )],
                None => {
                    // Opaque value: branch on taking the literal's value.
                    let mut yes = heap.clone();
                    yes.set(value_loc, other_value.clone());
                    let mut no = heap.clone();
                    let _ = &mut no;
                    vec![
                        (Outcome::Val(value_loc), yes),
                        (
                            Outcome::Err(blame(format!("expected the literal {other_value}"))),
                            no,
                        ),
                    ]
                }
            }
        }
    }
}

/// Monitors each argument of a guarded application against its domain
/// contract, then continues with the monitored argument locations.
#[allow(clippy::too_many_arguments)]
pub(super) fn monitor_args(
    ctx: &mut Ctx,
    doms: &[Loc],
    args: &[Loc],
    pos: &str,
    neg: &str,
    label: Label,
    heap: &Heap,
    done: Vec<Loc>,
    k: MonitorCont<'_>,
) -> Vec<(Outcome, Heap)> {
    match (doms.split_first(), args.split_first()) {
        (None, None) => k(ctx, done, heap.clone()),
        (Some((dom, doms_rest)), Some((arg, args_rest))) => {
            let mut out = Vec::new();
            for (outcome, branch_heap) in monitor(ctx, *dom, *arg, pos, neg, label, heap) {
                match outcome {
                    Outcome::Val(monitored) => {
                        let mut done = done.clone();
                        done.push(monitored);
                        out.extend(monitor_args(
                            ctx,
                            doms_rest,
                            args_rest,
                            pos,
                            neg,
                            label,
                            &branch_heap,
                            done,
                            k,
                        ));
                    }
                    other => out.push((other, branch_heap)),
                }
            }
            out
        }
        _ => vec![(Outcome::Timeout, heap.clone())],
    }
}

fn monitor_all(
    ctx: &mut Ctx,
    contracts: &[Loc],
    value_loc: Loc,
    pos: &str,
    neg: &str,
    label: Label,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    match contracts.split_first() {
        None => vec![(Outcome::Val(value_loc), heap.clone())],
        Some((first, rest)) => {
            let mut out = Vec::new();
            for (outcome, branch_heap) in monitor(ctx, *first, value_loc, pos, neg, label, heap) {
                match outcome {
                    Outcome::Val(next_value) => {
                        out.extend(monitor_all(
                            ctx,
                            rest,
                            next_value,
                            pos,
                            neg,
                            label,
                            &branch_heap,
                        ));
                    }
                    other => out.push((other, branch_heap)),
                }
            }
            out
        }
    }
}

fn monitor_or(
    ctx: &mut Ctx,
    contracts: &[Loc],
    value_loc: Loc,
    pos: &str,
    neg: &str,
    label: Label,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    match contracts.split_first() {
        None => vec![(
            Outcome::Err(CBlame {
                party: pos.to_string(),
                message: "none of the or/c alternatives hold".to_string(),
                label,
            }),
            heap.clone(),
        )],
        Some((first, rest)) => {
            // A branch where the first alternative succeeds, and branches
            // where it fails and the rest are tried.
            let mut out = Vec::new();
            for (outcome, branch_heap) in monitor(ctx, *first, value_loc, pos, neg, label, heap) {
                match outcome {
                    Outcome::Val(v) => out.push((Outcome::Val(v), branch_heap)),
                    Outcome::Err(_) => {
                        out.extend(monitor_or(
                            ctx,
                            rest,
                            value_loc,
                            pos,
                            neg,
                            label,
                            &branch_heap,
                        ));
                    }
                    Outcome::Timeout => out.push((Outcome::Timeout, branch_heap)),
                }
            }
            out
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn monitor_pair(
    ctx: &mut Ctx,
    car_contract: Loc,
    cdr_contract: Loc,
    value_loc: Loc,
    pos: &str,
    neg: &str,
    label: Label,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    let blame = CBlame {
        party: pos.to_string(),
        message: "expected a pair".to_string(),
        label,
    };
    let branches: Vec<(Option<(Loc, Loc)>, Heap)> = match heap.get(value_loc) {
        SVal::Pair(car, cdr) => vec![(Some((*car, *cdr)), heap.clone())],
        SVal::Opaque { .. } => match ctx.prover.prove_tag(heap, value_loc, &Tag::Pair) {
            Proof::Refuted => vec![(None, heap.clone())],
            _ => {
                let mut yes = heap.clone();
                refine_to_tag(ctx, &mut yes, value_loc, &Tag::Pair);
                let (car, cdr) = match yes.get(value_loc) {
                    SVal::Pair(a, b) => (*a, *b),
                    _ => unreachable!("refine_to_tag installs a pair"),
                };
                let mut no = heap.clone();
                no.refine(value_loc, CRefinement::IsNot(Tag::Pair));
                vec![(Some((car, cdr)), yes), (None, no)]
            }
        },
        _ => vec![(None, heap.clone())],
    };
    let mut out = Vec::new();
    for (pair, branch_heap) in branches {
        match pair {
            None => out.push((Outcome::Err(blame.clone()), branch_heap)),
            Some((car, cdr)) => {
                for (car_outcome, car_heap) in
                    monitor(ctx, car_contract, car, pos, neg, label, &branch_heap)
                {
                    match car_outcome {
                        Outcome::Val(_) => {
                            out.extend(
                                monitor(ctx, cdr_contract, cdr, pos, neg, label, &car_heap)
                                    .into_iter()
                                    .map(|(o, h)| match o {
                                        Outcome::Val(_) => (Outcome::Val(value_loc), h),
                                        other => (other, h),
                                    }),
                            );
                        }
                        other => out.push((other, car_heap)),
                    }
                }
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn monitor_listof(
    ctx: &mut Ctx,
    element_contract: Loc,
    value_loc: Loc,
    pos: &str,
    neg: &str,
    label: Label,
    heap: &Heap,
    depth: u32,
) -> Vec<(Outcome, Heap)> {
    let blame = CBlame {
        party: pos.to_string(),
        message: "expected a proper list".to_string(),
        label,
    };
    match heap.get(value_loc).clone() {
        SVal::Nil => vec![(Outcome::Val(value_loc), heap.clone())],
        SVal::Pair(car, cdr) => {
            let mut out = Vec::new();
            for (car_outcome, car_heap) in
                monitor(ctx, element_contract, car, pos, neg, label, heap)
            {
                match car_outcome {
                    Outcome::Val(_) => out.extend(
                        monitor_listof(
                            ctx,
                            element_contract,
                            cdr,
                            pos,
                            neg,
                            label,
                            &car_heap,
                            depth,
                        )
                        .into_iter()
                        .map(|(o, h)| match o {
                            Outcome::Val(_) => (Outcome::Val(value_loc), h),
                            other => (other, h),
                        }),
                    ),
                    other => out.push((other, car_heap)),
                }
            }
            out
        }
        SVal::Opaque { .. } => {
            if depth == 0 {
                // Assume the rest of the unknown list is empty.
                let mut heap = heap.clone();
                heap.set(value_loc, SVal::Nil);
                return vec![(Outcome::Val(value_loc), heap)];
            }
            // Branch: the unknown value is '() / a pair / not a list at all.
            let mut nil_heap = heap.clone();
            nil_heap.set(value_loc, SVal::Nil);
            let mut pair_heap = heap.clone();
            refine_to_tag(ctx, &mut pair_heap, value_loc, &Tag::Pair);
            let mut bad_heap = heap.clone();
            bad_heap.refine(value_loc, CRefinement::IsNot(Tag::Pair));
            bad_heap.refine(value_loc, CRefinement::IsNot(Tag::Null));
            let mut out = vec![(Outcome::Val(value_loc), nil_heap)];
            out.extend(monitor_listof(
                ctx,
                element_contract,
                value_loc,
                pos,
                neg,
                label,
                &pair_heap,
                depth - 1,
            ));
            out.push((Outcome::Err(blame), bad_heap));
            out
        }
        _ => vec![(Outcome::Err(blame), heap.clone())],
    }
}

fn monitor_one_of(
    ctx: &mut Ctx,
    options: &[Loc],
    value_loc: Loc,
    pos: &str,
    _neg: &str,
    label: Label,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    let _ = ctx;
    let blame = CBlame {
        party: pos.to_string(),
        message: "value is not one of the allowed literals".to_string(),
        label,
    };
    let mut out = Vec::new();
    let mut all_decided_false = true;
    for &option in options {
        match values_equal(heap, option, value_loc) {
            Some(true) => return vec![(Outcome::Val(value_loc), heap.clone())],
            Some(false) => {}
            None => {
                all_decided_false = false;
                // Branch where the opaque value takes this literal's value.
                let mut branch = heap.clone();
                branch.set(value_loc, heap.get(option).clone());
                out.push((Outcome::Val(value_loc), branch));
            }
        }
    }
    if all_decided_false || !out.is_empty() {
        out.push((Outcome::Err(blame), heap.clone()));
    }
    out
}

fn monitor_flat(
    ctx: &mut Ctx,
    predicate: Loc,
    value_loc: Loc,
    pos: &str,
    label: Label,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    let mut out = Vec::new();
    for (outcome, branch_heap) in apply(ctx, pos, predicate, &[value_loc], heap, label) {
        match outcome {
            Outcome::Val(result) => {
                for (is_true, truth_heap) in truthiness(ctx, &branch_heap, result) {
                    if is_true {
                        out.push((Outcome::Val(value_loc), truth_heap));
                    } else {
                        out.push((
                            Outcome::Err(CBlame {
                                party: pos.to_string(),
                                message: "flat contract violated".to_string(),
                                label,
                            }),
                            truth_heap,
                        ));
                    }
                }
            }
            other => out.push((other, branch_heap)),
        }
    }
    out
}
