//! The symbolic evaluator for CPCF: non-deterministic big-step evaluation
//! over the symbolic heap, with contract monitoring, blame, structural
//! refinement of opaque values and a demonic ("havoc") treatment of values
//! that escape to the unknown context.
//!
//! The typed core (`spcf`) follows the paper's small-step presentation rule
//! for rule; this crate — which has to handle contracts, structures, boxes
//! and dynamic typing — uses an equivalent big-step formulation with an
//! explicit fuel budget, which keeps the many language features manageable.
//! Each evaluation returns *all* possible outcomes, each paired with the
//! heap (path condition) it holds in.
//!
//! Every state split below — truthiness, tag predicates, contract branches,
//! the demonic context — forks the machine state with `heap.clone()`.
//! `Heap::clone` is an O(1) *snapshot* of a persistent copy-on-write
//! structure (see [`crate::heap`]), so the evaluator branches freely: the
//! old representation deep-copied the entire store and the O(path-length)
//! constraint journal at each of these sites, which made splitting the
//! dominant cost on deep paths.
//!
//! The evaluator is split by concern:
//!
//! * [`mod@self`] — the expression dispatcher, continuation plumbing
//!   (`bind`/`bind_list`) and the short-circuiting forms;
//! * [`branch`] — truthiness, tag predicates and structural refinement: the
//!   places where one symbolic state splits into several;
//! * [`apply`] — function application, including the demonic treatment of
//!   opaque functions and escaped values;
//! * [`contracts`] — contract monitoring and blame assignment;
//! * [`prims`] — primitive operations and symbolic arithmetic.
//!
//! All prover queries go through the [`Ctx`]'s [`ProverSession`], which
//! keeps a live incremental solver synchronized with the heap's constraint
//! journal, so the context must be threaded mutably everywhere (it is not
//! `Copy`, and neither are the options that configure it).

use std::collections::HashMap;

use crate::heap::{extend_env, Env, Heap, Loc, SVal};
use crate::numeric::Number;
use crate::prove::ProverSession;
use crate::syntax::{CBlame, Expr, Label, StructDef};

mod apply;
mod branch;
mod contracts;
mod prims;

pub use apply::{apply, havoc};
pub use branch::{refine_to_tag, tag_predicate, truthiness, values_equal};
pub use contracts::monitor;
pub use prims::apply_prim;

use crate::heap::{ContractVal, Tag};
use crate::prove::ProveConfig;

/// A single outcome of evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Normal termination with a value.
    Val(Loc),
    /// Blame.
    Err(CBlame),
    /// The fuel budget ran out along this path.
    Timeout,
}

impl Outcome {
    /// The value location, if this is a normal outcome.
    pub fn value(&self) -> Option<Loc> {
        match self {
            Outcome::Val(l) => Some(*l),
            _ => None,
        }
    }

    /// The blame, if this is an error outcome.
    pub fn blame(&self) -> Option<&CBlame> {
        match self {
            Outcome::Err(b) => Some(b),
            _ => None,
        }
    }
}

/// Evaluation options.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Total fuel (recursive evaluation steps) for one analysis run.
    pub fuel: u64,
    /// Maximum number of outcome branches kept at any point.
    pub max_branches: usize,
    /// Memoise applications of opaque functions (`case` maps).
    pub use_case_maps: bool,
    /// How deep the demonic context explores escaped structured values.
    pub havoc_depth: u32,
    /// Unrolling bound for `listof` contracts on opaque values.
    pub listof_depth: u32,
    /// Prover-session configuration (incremental vs. fresh-per-query,
    /// verdict caching).
    pub prove: ProveConfig,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            fuel: 60_000,
            max_branches: 512,
            use_case_maps: true,
            havoc_depth: 3,
            listof_depth: 3,
            prove: ProveConfig::default(),
        }
    }
}

/// The evaluation context: prover session, options, global definitions,
/// struct declarations and the remaining fuel.
#[derive(Debug)]
pub struct Ctx {
    /// The prover session used for tag and numeric queries. Stateful: it
    /// owns the live solver and the verdict cache.
    pub prover: ProverSession,
    /// Options.
    pub options: EvalOptions,
    /// Global (module-level) definitions: name → location.
    pub globals: HashMap<String, Loc>,
    /// Struct declarations by name.
    pub structs: HashMap<String, StructDef>,
    /// Remaining fuel.
    pub fuel: u64,
    /// Counter for generating fresh opaque labels during havoc.
    pub next_label: u32,
}

impl Ctx {
    /// Creates a context with the given options.
    pub fn new(options: EvalOptions) -> Self {
        let prover = ProverSession::with_config(options.prove.clone());
        Ctx::with_prover(options, prover)
    }

    /// Creates a context around an existing prover session, so a long-lived
    /// session (with its warmed verdict cache and live solver) can be reused
    /// across several evaluations — e.g. by an analysis worker thread
    /// claiming one export after another.
    pub fn with_prover(options: EvalOptions, prover: ProverSession) -> Self {
        let fuel = options.fuel;
        Ctx {
            prover,
            options,
            globals: HashMap::new(),
            structs: HashMap::new(),
            fuel,
            next_label: 1_000_000,
        }
    }

    fn tick(&mut self) -> bool {
        if self.fuel == 0 {
            false
        } else {
            self.fuel -= 1;
            true
        }
    }

    /// A fresh label (used for synthesized opaque values during havoc).
    pub fn fresh_label(&mut self) -> Label {
        let label = Label(self.next_label);
        self.next_label += 1;
        label
    }
}

/// All outcomes of evaluating `expr`.
pub fn eval(
    ctx: &mut Ctx,
    env: &Env,
    owner: &str,
    expr: &Expr,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    if !ctx.tick() {
        return vec![(Outcome::Timeout, heap.clone())];
    }
    let mut results = eval_inner(ctx, env, owner, expr, heap);
    if results.len() > ctx.options.max_branches {
        results.truncate(ctx.options.max_branches);
    }
    results
}

fn eval_inner(
    ctx: &mut Ctx,
    env: &Env,
    owner: &str,
    expr: &Expr,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    match expr {
        Expr::Int(n) => alloc_value(heap, SVal::Num(Number::Int(*n))),
        Expr::Complex(re, im) => alloc_value(heap, SVal::Num(Number::complex(*re, *im))),
        Expr::Bool(b) => alloc_value(heap, SVal::Bool(*b)),
        Expr::Str(s) => alloc_value(heap, SVal::Str(s.clone())),
        Expr::Nil => alloc_value(heap, SVal::Nil),
        Expr::Opaque(label) => {
            let mut heap = heap.clone();
            let loc = heap.alloc_opaque(*label);
            vec![(Outcome::Val(loc), heap)]
        }
        Expr::Var(name) => match env
            .get(name)
            .copied()
            .or_else(|| ctx.globals.get(name).copied())
        {
            Some(loc) => vec![(Outcome::Val(loc), heap.clone())],
            None => vec![(
                Outcome::Err(CBlame {
                    party: owner.to_string(),
                    message: format!("unbound variable `{name}`"),
                    label: Label(u32::MAX),
                }),
                heap.clone(),
            )],
        },
        Expr::Lam { params, body } => alloc_value(
            heap,
            SVal::Closure {
                params: params.clone(),
                body: (**body).clone(),
                env: env.clone(),
                owner: owner.to_string(),
            },
        ),
        Expr::If(condition, then_branch, else_branch) => {
            bind(ctx, env, owner, condition, heap, |ctx, loc, heap| {
                truthiness(ctx, &heap, loc)
                    .into_iter()
                    .flat_map(|(is_true, branch_heap)| {
                        let branch = if is_true { then_branch } else { else_branch };
                        eval(ctx, env, owner, branch, &branch_heap)
                    })
                    .collect()
            })
        }
        Expr::And(parts) => eval_and(ctx, env, owner, parts, heap),
        Expr::Or(parts) => eval_or(ctx, env, owner, parts, heap),
        Expr::Begin(parts) => eval_begin(ctx, env, owner, parts, heap),
        Expr::Let {
            bindings,
            recursive,
            body,
        } => eval_let(ctx, env, owner, bindings, *recursive, body, heap),
        Expr::App(function, args) => bind(ctx, env, owner, function, heap, |ctx, f_loc, heap| {
            bind_list(ctx, env, owner, args, &heap, |ctx, arg_locs, heap| {
                apply(ctx, owner, f_loc, &arg_locs, &heap, Label(u32::MAX))
            })
        }),
        Expr::Prim(prim, args, label) => {
            bind_list(ctx, env, owner, args, heap, |ctx, arg_locs, heap| {
                apply_prim(ctx, owner, *prim, &arg_locs, &heap, *label)
            })
        }
        Expr::StructMake(name, args) => {
            bind_list(ctx, env, owner, args, heap, |_, arg_locs, heap| {
                let mut heap = heap;
                let loc = heap.alloc(SVal::StructVal {
                    tag: name.clone(),
                    fields: arg_locs,
                });
                vec![(Outcome::Val(loc), heap)]
            })
        }
        Expr::StructPred(name, inner) => bind(ctx, env, owner, inner, heap, |ctx, loc, heap| {
            tag_predicate(ctx, &heap, loc, &Tag::Struct(name.clone()))
        }),
        Expr::StructGet(name, index, inner, label) => {
            let field_count = ctx.structs.get(name).map(|d| d.fields.len()).unwrap_or(0);
            let name = name.clone();
            let index = *index;
            let label = *label;
            bind(ctx, env, owner, inner, heap, move |ctx, loc, heap| {
                branch::struct_project(ctx, owner, &heap, loc, &name, index, field_count, label)
            })
        }
        // Contract combinators evaluate to contract values.
        Expr::CAny => alloc_value(heap, SVal::Contract(ContractVal::Any)),
        Expr::CArrow(doms, rng) => bind_list(ctx, env, owner, doms, heap, |ctx, dom_locs, heap| {
            bind(ctx, env, owner, rng, &heap, |_, rng_loc, heap| {
                let mut heap = heap;
                let loc = heap.alloc(SVal::Contract(ContractVal::Func {
                    doms: dom_locs.clone(),
                    rng: rng_loc,
                }));
                vec![(Outcome::Val(loc), heap)]
            })
        }),
        Expr::CAnd(parts) => bind_list(ctx, env, owner, parts, heap, |_, locs, heap| {
            let mut heap = heap;
            let loc = heap.alloc(SVal::Contract(ContractVal::And(locs)));
            vec![(Outcome::Val(loc), heap)]
        }),
        Expr::COr(parts) => bind_list(ctx, env, owner, parts, heap, |_, locs, heap| {
            let mut heap = heap;
            let loc = heap.alloc(SVal::Contract(ContractVal::Or(locs)));
            vec![(Outcome::Val(loc), heap)]
        }),
        Expr::CCons(car, cdr) => bind(ctx, env, owner, car, heap, |ctx, car_loc, heap| {
            bind(ctx, env, owner, cdr, &heap, |_, cdr_loc, heap| {
                let mut heap = heap;
                let loc = heap.alloc(SVal::Contract(ContractVal::Cons(car_loc, cdr_loc)));
                vec![(Outcome::Val(loc), heap)]
            })
        }),
        Expr::CListOf(element) => bind(ctx, env, owner, element, heap, |_, element_loc, heap| {
            let mut heap = heap;
            let loc = heap.alloc(SVal::Contract(ContractVal::ListOf(element_loc)));
            vec![(Outcome::Val(loc), heap)]
        }),
        Expr::COneOf(parts) => bind_list(ctx, env, owner, parts, heap, |_, locs, heap| {
            let mut heap = heap;
            let loc = heap.alloc(SVal::Contract(ContractVal::OneOf(locs)));
            vec![(Outcome::Val(loc), heap)]
        }),
        Expr::Mon {
            contract,
            value,
            pos,
            neg,
            label,
        } => {
            let (pos, neg, label) = (pos.clone(), neg.clone(), *label);
            bind(
                ctx,
                env,
                owner,
                contract,
                heap,
                move |ctx, contract_loc, heap| {
                    let (pos, neg) = (pos.clone(), neg.clone());
                    bind(
                        ctx,
                        env,
                        owner,
                        value,
                        &heap,
                        move |ctx, value_loc, heap| {
                            monitor(ctx, contract_loc, value_loc, &pos, &neg, label, &heap)
                        },
                    )
                },
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Plumbing helpers
// ---------------------------------------------------------------------------

/// Allocates a value in a clone of the heap and returns it as the single
/// outcome.
pub(crate) fn alloc_value(heap: &Heap, value: SVal) -> Vec<(Outcome, Heap)> {
    let mut heap = heap.clone();
    let loc = heap.alloc(value);
    vec![(Outcome::Val(loc), heap)]
}

/// Evaluates `expr` and continues with `k` on every normal outcome,
/// propagating errors and timeouts.
fn bind<K>(
    ctx: &mut Ctx,
    env: &Env,
    owner: &str,
    expr: &Expr,
    heap: &Heap,
    mut k: K,
) -> Vec<(Outcome, Heap)>
where
    K: FnMut(&mut Ctx, Loc, Heap) -> Vec<(Outcome, Heap)>,
{
    let mut out = Vec::new();
    for (outcome, branch_heap) in eval(ctx, env, owner, expr, heap) {
        if out.len() >= ctx.options.max_branches {
            break;
        }
        match outcome {
            Outcome::Val(loc) => out.extend(k(ctx, loc, branch_heap)),
            other => out.push((other, branch_heap)),
        }
    }
    out
}

/// Evaluates a list of expressions left to right and continues with the
/// resulting locations.
fn bind_list<K>(
    ctx: &mut Ctx,
    env: &Env,
    owner: &str,
    exprs: &[Expr],
    heap: &Heap,
    mut k: K,
) -> Vec<(Outcome, Heap)>
where
    K: FnMut(&mut Ctx, Vec<Loc>, Heap) -> Vec<(Outcome, Heap)>,
{
    fn go<K>(
        ctx: &mut Ctx,
        env: &Env,
        owner: &str,
        exprs: &[Expr],
        done: Vec<Loc>,
        heap: Heap,
        k: &mut K,
    ) -> Vec<(Outcome, Heap)>
    where
        K: FnMut(&mut Ctx, Vec<Loc>, Heap) -> Vec<(Outcome, Heap)>,
    {
        match exprs.split_first() {
            None => k(ctx, done, heap),
            Some((first, rest)) => {
                let mut out = Vec::new();
                for (outcome, branch_heap) in eval(ctx, env, owner, first, &heap) {
                    if out.len() >= ctx.options.max_branches {
                        break;
                    }
                    match outcome {
                        Outcome::Val(loc) => {
                            let mut done = done.clone();
                            done.push(loc);
                            out.extend(go(ctx, env, owner, rest, done, branch_heap, k));
                        }
                        other => out.push((other, branch_heap)),
                    }
                }
                out
            }
        }
    }
    go(ctx, env, owner, exprs, Vec::new(), heap.clone(), &mut k)
}

fn eval_and(
    ctx: &mut Ctx,
    env: &Env,
    owner: &str,
    parts: &[Expr],
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    match parts.split_first() {
        None => alloc_value(heap, SVal::Bool(true)),
        Some((first, [])) => eval(ctx, env, owner, first, heap),
        Some((first, rest)) => bind(ctx, env, owner, first, heap, |ctx, loc, heap| {
            truthiness(ctx, &heap, loc)
                .into_iter()
                .flat_map(|(is_true, branch_heap)| {
                    if is_true {
                        eval_and(ctx, env, owner, rest, &branch_heap)
                    } else {
                        alloc_value(&branch_heap, SVal::Bool(false))
                    }
                })
                .collect()
        }),
    }
}

fn eval_or(
    ctx: &mut Ctx,
    env: &Env,
    owner: &str,
    parts: &[Expr],
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    match parts.split_first() {
        None => alloc_value(heap, SVal::Bool(false)),
        Some((first, [])) => eval(ctx, env, owner, first, heap),
        Some((first, rest)) => bind(ctx, env, owner, first, heap, |ctx, loc, heap| {
            truthiness(ctx, &heap, loc)
                .into_iter()
                .flat_map(|(is_true, branch_heap)| {
                    if is_true {
                        vec![(Outcome::Val(loc), branch_heap)]
                    } else {
                        eval_or(ctx, env, owner, rest, &branch_heap)
                    }
                })
                .collect()
        }),
    }
}

fn eval_begin(
    ctx: &mut Ctx,
    env: &Env,
    owner: &str,
    parts: &[Expr],
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    match parts.split_first() {
        None => alloc_value(heap, SVal::Nil),
        Some((only, [])) => eval(ctx, env, owner, only, heap),
        Some((first, rest)) => bind(ctx, env, owner, first, heap, |ctx, _loc, heap| {
            eval_begin(ctx, env, owner, rest, &heap)
        }),
    }
}

fn eval_let(
    ctx: &mut Ctx,
    env: &Env,
    owner: &str,
    bindings: &[(String, Expr)],
    recursive: bool,
    body: &Expr,
    heap: &Heap,
) -> Vec<(Outcome, Heap)> {
    if recursive {
        // Pre-allocate placeholder locations so right-hand sides can refer to
        // every binding, then overwrite the placeholders with the results.
        let mut heap = heap.clone();
        let placeholders: Vec<(String, Loc)> = bindings
            .iter()
            .map(|(name, _)| (name.clone(), heap.alloc(SVal::opaque())))
            .collect();
        let extended = extend_env(env, placeholders.clone());
        let exprs: Vec<Expr> = bindings.iter().map(|(_, e)| e.clone()).collect();
        bind_list(ctx, &extended, owner, &exprs, &heap, |ctx, locs, heap| {
            let mut heap = heap;
            for ((_, placeholder), value_loc) in placeholders.iter().zip(&locs) {
                let value = heap.get(*value_loc).clone();
                heap.set(*placeholder, value);
            }
            eval(ctx, &extended, owner, body, &heap)
        })
    } else {
        let exprs: Vec<Expr> = bindings.iter().map(|(_, e)| e.clone()).collect();
        let names: Vec<String> = bindings.iter().map(|(n, _)| n.clone()).collect();
        bind_list(ctx, env, owner, &exprs, heap, |ctx, locs, heap| {
            let extended = extend_env(env, names.iter().cloned().zip(locs.iter().copied()));
            eval(ctx, &extended, owner, body, &heap)
        })
    }
}
