//! Reasoning about opaque values: tag-level reasoning done directly on
//! refinements, numeric reasoning delegated to the first-order solver.
//!
//! As in the typed core, only *base values* are ever encoded for the solver
//! (Fig. 4): numeric refinements become integer formulas, the memo tables of
//! opaque functions become functionality constraints, and everything
//! higher-order stays on the semantics side.
//!
//! ## Incremental sessions
//!
//! The original implementation built a fresh [`Solver`] and re-encoded the
//! entire symbolic heap on every numeric query. [`ProverSession`] replaces
//! it with an incremental query engine:
//!
//! * it keeps one **live solver** whose assertion stack mirrors a prefix of
//!   the heap's constraint journal (read incrementally via
//!   [`Heap::journal_suffix`]);
//! * each query **asserts only the journal suffix** the solver has not seen,
//!   bracketed in `push`/`pop` scopes so sibling branches of the evaluator
//!   pop back to the shared prefix instead of re-encoding it;
//! * verdicts are **memoized** in a `(heap fingerprint, query) → Proof`
//!   cache that survives branching, because the fingerprint identifies heap
//!   content, not solver state;
//! * a non-monotone heap update (a [`JournalEvent::Rebase`]) is handled by
//!   **pop-to-write-point retraction**: the rebase event carries the journal
//!   position at which the overwritten location's constraints entered the
//!   formula stream, the session pops only the solver frames covering that
//!   position onwards ([`Solver::pop_to`]), and replays the surviving
//!   journal suffix as a delta. Only when the write-point falls inside the
//!   base (scope-0) encoding does the old cost model return — a full
//!   re-encode from scratch.
//!
//! [`ProveConfig::retraction`] (off: every rebase discards the whole solver
//! state, the engine of the pre-retraction implementation) and
//! [`ProveConfig::fresh_per_query`] (the original solver-per-query engine,
//! cache disabled) are ablation switches so the three engines can be
//! compared differentially; [`SessionStats`] counts queries, cache hits,
//! encodings, retractions and replayed assertions so the savings are
//! measurable. The `CPCF_PROVE_MODE` environment variable (`incremental`,
//! `rebase` or `fresh`) selects the default engine, so CI can run the whole
//! suite under each.
//!
//! Beneath the session sits the solver-core axis (`CPCF_SOLVER_CORE`,
//! [`folic::default_core_mode`]): by default every [`Solver`] a session
//! drives is backed by `folic`'s persistent incremental core (hash-consed
//! atoms, a CDCL clause database that survives across queries with frames
//! retracting by activation literals, per-query cone slicing), so the
//! session's `push`/`pop`/`pop_to` frames map directly onto core
//! retractions, and a whole-session rebase ([`Solver::clear_assertions`])
//! keeps the interned atoms, Tseitin encodings and learned theory lemmas
//! alive instead of discarding the solver.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use folic::{
    CmpOp, Formula, Model, Proof, SharedLemmaPool, SmtResult, Solver, SolverConfig, SolverStats,
    Term, Var,
};

use crate::heap::{CRefinement, CSymExpr, Heap, JournalEvent, Loc, SVal, Tag};
use crate::numeric::Number;

/// First solver variable used for auxiliary variables (division/modulo
/// witnesses) by an incremental session. Heap locations are numbered from
/// zero, so keeping auxiliaries in a high, disjoint range means later heap
/// allocations can never collide with an auxiliary introduced by an earlier
/// query.
const SESSION_AUX_BASE: u32 = 1 << 30;

/// Configuration for solver queries.
#[derive(Debug, Clone)]
pub struct ProveConfig {
    /// Underlying solver configuration.
    pub solver: SolverConfig,
    /// Ablation switch: rebuild a fresh solver and re-encode the whole heap
    /// on every query (the original engine), and bypass the verdict cache.
    /// Used for differential testing of the incremental session.
    pub fresh_per_query: bool,
    /// Memoize `(heap fingerprint, query) → Proof` verdicts. Ignored (off)
    /// when `fresh_per_query` is set.
    pub cache: bool,
    /// Handle non-monotone overwrites by pop-to-write-point retraction
    /// (pop only the solver frames covering the overwritten location's
    /// write-point, replay the surviving suffix as deltas). When off, every
    /// [`JournalEvent::Rebase`] in an unseen journal suffix discards the
    /// whole live solver and re-encodes the heap from scratch — the
    /// pre-retraction engine, kept as an ablation for differential testing.
    pub retraction: bool,
}

/// The default prover engine, taken from the `CPCF_PROVE_MODE` environment
/// variable: `incremental` (retraction on; the default when unset), `rebase`
/// (incremental sessions, but every non-monotone overwrite re-encodes from
/// scratch), or `fresh` (the original solver-per-query engine). An
/// unrecognised value falls back to `incremental` with a once-per-process
/// warning, so a typo in a CI matrix cannot silently test the wrong engine.
/// Returned as `(fresh_per_query, retraction)`.
pub fn default_prove_mode() -> (bool, bool) {
    match std::env::var("CPCF_PROVE_MODE").ok().as_deref() {
        Some("rebase") => (false, false),
        Some("fresh") => (true, false),
        Some("incremental") | None => (false, true),
        Some(other) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: unrecognised CPCF_PROVE_MODE `{other}` \
                     (expected incremental|rebase|fresh); using incremental"
                );
            });
            (false, true)
        }
    }
}

impl Default for ProveConfig {
    fn default() -> Self {
        let (fresh_per_query, retraction) = default_prove_mode();
        ProveConfig {
            solver: SolverConfig::default(),
            fresh_per_query,
            cache: true,
            retraction,
        }
    }
}

/// Counters describing the work one [`ProverSession`] has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Total queries answered (tag, numeric and model queries).
    pub queries: u64,
    /// Tag queries (answered from refinements, never via the solver).
    pub tag_queries: u64,
    /// Numeric queries (solver-backed).
    pub num_queries: u64,
    /// Heap-model requests (solver-backed).
    pub model_queries: u64,
    /// Queries answered from the verdict cache.
    pub cache_hits: u64,
    /// The subset of `cache_hits` served by a [`SharedVerdictCache`] — i.e.
    /// verdicts this session did not compute itself but inherited from
    /// another session (a sibling worker, or an earlier analysis run sharing
    /// the cache).
    pub shared_cache_hits: u64,
    /// Whole-heap encodings (fresh solver + full translation).
    pub full_encodings: u64,
    /// Incremental encodings of a journal suffix only.
    pub delta_encodings: u64,
    /// Solver-backed queries for which the live solver already matched the
    /// heap exactly — no encoding work at all.
    pub reused_encodings: u64,
    /// Non-monotone overwrites absorbed by pop-to-write-point retraction
    /// instead of a whole-heap re-encode.
    pub retractions: u64,
    /// Solver frames popped by retractions (branch-switch pops, the normal
    /// sibling-heap navigation, are not counted here).
    pub frames_popped: u64,
    /// Formulas re-asserted while replaying the surviving journal suffix
    /// after a retraction pop.
    pub assertions_replayed: u64,
    /// Heap snapshots ([`Heap::clone`]) taken while this session's work ran.
    /// Sessions do not snapshot heaps themselves; the analysis scheduler
    /// fills this from the thread-local sharing counters
    /// ([`crate::pmap::sharing_totals`]) around each export run, so the
    /// counter attributes the evaluator's branch splits to the session that
    /// answered their queries.
    pub snapshots: u64,
    /// Persistent-map nodes structurally copied because a heap write hit a
    /// node still shared with another snapshot (the entire per-write cost of
    /// copy-on-write, in place of the old whole-map deep clones). Filled by
    /// the scheduler like `snapshots`.
    pub nodes_copied: u64,
    /// Journal bytes snapshots shared by reference instead of deep-copying —
    /// exactly the bytes the old `Vec`-journal representation memcpy'd at
    /// every branch split. Filled by the scheduler like `snapshots`.
    pub journal_bytes_shared: u64,
    /// The subset of `shared_cache_hits` served by the *persistent* tier
    /// ([`crate::AnalysisStore`]) rather than the in-memory shards — i.e.
    /// verdicts inherited from an earlier process.
    pub store_hits: u64,
    /// Queries that missed both cache tiers while a persistent store was
    /// attached (the store's reach: `store_hits / (store_hits +
    /// store_misses)` is the warm-start hit rate).
    pub store_misses: u64,
    /// Verdicts this session newly appended to the persistent store.
    pub store_writes: u64,
    /// Aggregated statistics of the underlying first-order solver(s).
    pub solver: SolverStats,
}

impl SessionStats {
    /// Accumulates another session's counters into this one.
    pub fn merge(&mut self, other: &SessionStats) {
        self.queries += other.queries;
        self.tag_queries += other.tag_queries;
        self.num_queries += other.num_queries;
        self.model_queries += other.model_queries;
        self.cache_hits += other.cache_hits;
        self.shared_cache_hits += other.shared_cache_hits;
        self.full_encodings += other.full_encodings;
        self.delta_encodings += other.delta_encodings;
        self.reused_encodings += other.reused_encodings;
        self.retractions += other.retractions;
        self.frames_popped += other.frames_popped;
        self.assertions_replayed += other.assertions_replayed;
        self.snapshots += other.snapshots;
        self.nodes_copied += other.nodes_copied;
        self.journal_bytes_shared += other.journal_bytes_shared;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.store_writes += other.store_writes;
        self.solver.merge(&other.solver);
    }

    /// Adds a reading of the heap-sharing counters (snapshots taken, map
    /// nodes copied, journal bytes shared) to this session's stats. Called
    /// by the analysis scheduler with the per-export delta of
    /// [`crate::pmap::sharing_totals`].
    pub fn add_sharing(&mut self, sharing: &crate::pmap::SharingStats) {
        self.snapshots += sharing.snapshots;
        self.nodes_copied += sharing.nodes_copied;
        self.journal_bytes_shared += sharing.journal_bytes_shared;
    }
}

/// A memoizable query. Crate-visible so [`crate::store`] can serialize
/// cache keys content-addressed for the persistent tier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum Query {
    Tag(Loc, Tag),
    Num(Loc, CmpOp, CSymExpr),
}

/// A cache key: heap fingerprint, heap generation, and the query itself.
pub(crate) type CacheKey = (u64, u64, Query);

/// Number of lock shards in a [`SharedVerdictCache`]. Shard selection uses
/// the heap fingerprint, which is already a well-mixed 64-bit hash.
const CACHE_SHARDS: usize = 16;

/// Per-shard entry bound, so pathological runs cannot grow without limit
/// (mirrors the private session cache's crude bound).
const SHARD_CAPACITY: usize = 1 << 16;

#[derive(Debug, Default)]
struct SharedCacheInner {
    shards: [Mutex<HashMap<CacheKey, (u32, Proof)>>; CACHE_SHARDS],
    /// The current epoch; entries remember the epoch they were stored in.
    epoch: AtomicU32,
    /// Total lookups served from this cache.
    hits: AtomicU64,
    /// Hits on entries stored in an *earlier* epoch than the lookup's — with
    /// one [`SharedVerdictCache::advance_epoch`] between the correct and
    /// faulty variant runs of a benchmark, this counts exactly the
    /// cross-variant hits.
    cross_epoch_hits: AtomicU64,
    /// Optional persistent tier: misses fall through to this on-disk store
    /// and new verdicts append to it, giving later *processes* a warm
    /// start. Disk hits are adopted into the in-memory shards (at the
    /// current epoch) so each stored verdict pays the disk-map lookup once.
    persist: Option<crate::store::AnalysisStore>,
}

/// A verdict cache sharable across [`ProverSession`]s and across threads:
/// a sharded, fingerprint-keyed `(heap fingerprint, generation, query) →
/// Proof` map behind `Arc<Mutex<…>>` shards.
///
/// Because the fingerprint identifies heap *content* (the constraint
/// journal), verdicts computed by one session are valid for any other
/// session that reaches a heap with the same journal — a sibling worker
/// thread analyzing another export, or a later analysis of a program variant
/// sharing the same module-loading prefix. Epochs make the cross-run reuse
/// measurable: callers bump [`SharedVerdictCache::advance_epoch`] between
/// runs and read [`SharedVerdictCache::cross_epoch_hits`].
#[derive(Debug, Clone, Default)]
pub struct SharedVerdictCache {
    inner: Arc<SharedCacheInner>,
}

impl SharedVerdictCache {
    /// Creates an empty cache (epoch zero).
    pub fn new() -> Self {
        SharedVerdictCache::default()
    }

    /// Creates a cache whose misses fall through to (and whose new verdicts
    /// append to) a persistent [`crate::AnalysisStore`]. The store's engine
    /// fingerprint keeps configurations apart; within one configuration the
    /// content-addressed keys make disk verdicts exactly as trustworthy as
    /// in-memory ones.
    pub fn with_store(store: crate::store::AnalysisStore) -> Self {
        SharedVerdictCache {
            inner: Arc::new(SharedCacheInner {
                persist: Some(store),
                ..SharedCacheInner::default()
            }),
        }
    }

    /// True when a persistent store backs this cache.
    pub fn has_store(&self) -> bool {
        self.inner.persist.is_some()
    }

    /// The persistent store backing this cache, if any.
    pub fn backing_store(&self) -> Option<&crate::store::AnalysisStore> {
        self.inner.persist.as_ref()
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, (u32, Proof)>> {
        &self.inner.shards[(key.0 as usize) % CACHE_SHARDS]
    }

    /// Looks up a verdict; the second component reports whether it came
    /// from the persistent tier (`true`) or the in-memory shards (`false`).
    fn lookup(&self, key: &CacheKey) -> Option<(Proof, bool)> {
        let entry = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .copied();
        if let Some((stored_epoch, proof)) = entry {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            if stored_epoch < self.inner.epoch.load(Ordering::Relaxed) {
                self.inner.cross_epoch_hits.fetch_add(1, Ordering::Relaxed);
            }
            return Some((proof, false));
        }
        let persist = self.inner.persist.as_ref()?;
        let proof = persist.lookup_verdict(&crate::store::verdict_key_bytes(key))?;
        // Adopt the disk verdict into its shard at the *current* epoch (it
        // is not an in-memory cross-run reuse) so repeat lookups stay off
        // the store path. Not counted in `hits`: that counter measures the
        // in-memory tier, the store keeps its own.
        let epoch = self.inner.epoch.load(Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if shard.len() >= SHARD_CAPACITY {
            shard.clear();
        }
        shard.entry(key.clone()).or_insert((epoch, proof));
        Some((proof, true))
    }

    /// Stores a verdict in the in-memory shards and, when a persistent
    /// store is attached, on disk. Returns `true` when the verdict was new
    /// to the store (a record was appended).
    fn store(&self, key: CacheKey, proof: Proof) -> bool {
        let key_bytes = self
            .inner
            .persist
            .as_ref()
            .map(|_| crate::store::verdict_key_bytes(&key));
        let epoch = self.inner.epoch.load(Ordering::Relaxed);
        {
            let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
            if shard.len() >= SHARD_CAPACITY {
                shard.clear();
            }
            // Keep the oldest epoch tag: re-storing an entry in a later run
            // must not mask its cross-run provenance.
            shard.entry(key).or_insert((epoch, proof));
        }
        match (&self.inner.persist, key_bytes) {
            (Some(persist), Some(bytes)) => persist.record_verdict(bytes, proof),
            _ => false,
        }
    }

    /// Starts a new epoch. Entries stored before the call count as
    /// cross-epoch when hit afterwards.
    pub fn advance_epoch(&self) {
        self.inner.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Total lookups served from this cache, over all sessions and epochs.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Hits on entries stored in an earlier epoch than the lookup's.
    pub fn cross_epoch_hits(&self) -> u64 {
        self.inner.cross_epoch_hits.load(Ordering::Relaxed)
    }

    /// Number of memoized verdicts currently held.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True if no verdict is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A synchronized prefix of some heap's journal: the solver's assertion
/// stack up to the frame's scope reflects exactly `len` journal events whose
/// chain fingerprint is `fingerprint`.
#[derive(Debug, Clone, Copy)]
struct Frame {
    len: usize,
    fingerprint: u64,
}

/// Does `heap`'s journal extend the synchronized prefix `frame`?
fn extends(heap: &Heap, frame: &Frame) -> bool {
    heap.journal_len() >= frame.len && heap.journal_fingerprint_at(frame.len) == frame.fingerprint
}

/// A stateful prover: tag reasoning on refinements plus incremental numeric
/// queries against a live first-order solver.
///
/// Unlike the original `Copy` prover, a session owns solver state and must
/// be threaded mutably through the evaluator (it lives in `eval::Ctx`).
#[derive(Debug)]
pub struct ProverSession {
    /// Query configuration.
    config: ProveConfig,
    /// The live solver; its scopes parallel `frames[1..]`.
    solver: Solver,
    /// Synchronized journal prefixes, outermost first. Empty until the first
    /// solver-backed query; `frames[0]` is the base (scope-0) encoding.
    frames: Vec<Frame>,
    /// Memoized verdicts keyed by heap fingerprint + generation + query.
    cache: HashMap<CacheKey, Proof>,
    /// Optional second-level cache shared with other sessions (sibling
    /// worker threads, other analysis runs). Checked after the private
    /// cache; hits are copied into the private cache.
    shared: Option<SharedVerdictCache>,
    /// Work counters.
    stats: SessionStats,
    /// Optional cross-worker theory-lemma pool, handed to every solver this
    /// session creates (the live solver and fresh-mode solvers alike).
    lemma_pool: Option<SharedLemmaPool>,
    /// Statistics of solvers that have been retired (fresh-mode solvers and
    /// live solvers discarded by a full re-encode).
    retired_solver_stats: SolverStats,
    /// Next auxiliary variable for division/modulo witnesses.
    aux_next: u32,
}

impl Default for ProverSession {
    fn default() -> Self {
        ProverSession::new()
    }
}

impl ProverSession {
    /// Creates a session with the default configuration.
    pub fn new() -> Self {
        ProverSession::with_config(ProveConfig::default())
    }

    /// Creates a session with an explicit configuration.
    pub fn with_config(config: ProveConfig) -> Self {
        let solver = Solver::with_config(config.solver);
        ProverSession {
            config,
            solver,
            frames: Vec::new(),
            cache: HashMap::new(),
            shared: None,
            stats: SessionStats::default(),
            lemma_pool: None,
            retired_solver_stats: SolverStats::default(),
            aux_next: SESSION_AUX_BASE,
        }
    }

    /// Creates a session backed by a [`SharedVerdictCache`] in addition to
    /// its private cache. Sessions sharing a cache exchange verdicts keyed
    /// by heap fingerprint, which is safe across threads and runs because
    /// the fingerprint identifies constraint content, not session state.
    pub fn with_config_and_cache(config: ProveConfig, shared: SharedVerdictCache) -> Self {
        let mut session = ProverSession::with_config(config);
        session.shared = Some(shared);
        session
    }

    /// The shared cache backing this session, if any.
    pub fn shared_cache(&self) -> Option<&SharedVerdictCache> {
        self.shared.as_ref()
    }

    /// Connects this session to a cross-worker theory-lemma pool
    /// ([`folic::SharedLemmaPool`]): the live solver — and every fresh
    /// solver the session later builds — publishes the theory lemmas it
    /// derives and imports the siblings' at check boundaries. Lemmas are
    /// universally valid facts over globally-interned atoms, so sharing
    /// them never changes which verdicts are sound, only how fast the
    /// searches converge.
    pub fn set_lemma_pool(&mut self, pool: SharedLemmaPool) {
        self.solver.set_lemma_pool(pool.clone());
        self.lemma_pool = Some(pool);
    }

    /// Builder form of [`ProverSession::set_lemma_pool`].
    pub fn with_lemma_pool(mut self, pool: SharedLemmaPool) -> Self {
        self.set_lemma_pool(pool);
        self
    }

    /// The session's configuration.
    pub fn config(&self) -> &ProveConfig {
        &self.config
    }

    /// A snapshot of the session's counters, including the aggregated
    /// statistics of every underlying solver it has used.
    pub fn stats(&self) -> SessionStats {
        let mut stats = self.stats;
        stats.solver = self.retired_solver_stats;
        stats.solver.merge(&self.solver.stats());
        stats
    }

    /// Resets all counters (solver state and cache are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = SessionStats::default();
        self.retired_solver_stats = SolverStats::default();
        self.solver.reset_stats();
    }

    fn cache_enabled(&self) -> bool {
        self.config.cache && !self.config.fresh_per_query
    }

    fn cache_lookup(&mut self, heap: &Heap, query: &Query) -> Option<Proof> {
        if !self.cache_enabled() {
            return None;
        }
        let key = (heap.fingerprint(), heap.generation(), query.clone());
        if let Some(proof) = self.cache.get(&key).copied() {
            self.stats.cache_hits += 1;
            return Some(proof);
        }
        if let Some(shared) = &self.shared {
            if let Some((proof, from_store)) = shared.lookup(&key) {
                self.stats.cache_hits += 1;
                self.stats.shared_cache_hits += 1;
                if from_store {
                    self.stats.store_hits += 1;
                }
                self.cache.insert(key, proof);
                return Some(proof);
            }
            if shared.has_store() {
                self.stats.store_misses += 1;
            }
        }
        None
    }

    fn cache_store(&mut self, heap: &Heap, query: Query, proof: Proof) {
        if !self.cache_enabled() {
            return;
        }
        // A crude bound so pathological runs cannot grow without limit.
        if self.cache.len() >= 1 << 20 {
            self.cache.clear();
        }
        let key = (heap.fingerprint(), heap.generation(), query);
        if let Some(shared) = &self.shared {
            if shared.store(key.clone(), proof) {
                self.stats.store_writes += 1;
            }
        }
        self.cache.insert(key, proof);
    }

    /// Does the value at `loc` have tag `tag`? Three-valued, using concrete
    /// values and tag refinements (never the solver).
    pub fn prove_tag(&mut self, heap: &Heap, loc: Loc, tag: &Tag) -> Proof {
        self.stats.queries += 1;
        self.stats.tag_queries += 1;
        let query = Query::Tag(loc, tag.clone());
        if let Some(proof) = self.cache_lookup(heap, &query) {
            return proof;
        }
        let proof = tag_verdict(heap, loc, tag);
        self.cache_store(heap, query, proof);
        proof
    }

    /// Does the numeric value at `loc` stand in relation `op` to `rhs`?
    pub fn prove_num(&mut self, heap: &Heap, loc: Loc, op: CmpOp, rhs: &CSymExpr) -> Proof {
        self.stats.queries += 1;
        self.stats.num_queries += 1;
        let query = Query::Num(loc, op, rhs.clone());
        if let Some(proof) = self.cache_lookup(heap, &query) {
            return proof;
        }
        let proof = if self.config.fresh_per_query {
            self.prove_num_fresh(heap, loc, op, rhs)
        } else {
            self.prove_num_incremental(heap, loc, op, rhs)
        };
        self.cache_store(heap, query, proof);
        proof
    }

    /// The original engine: fresh solver, whole-heap translation.
    fn prove_num_fresh(&mut self, heap: &Heap, loc: Loc, op: CmpOp, rhs: &CSymExpr) -> Proof {
        self.stats.full_encodings += 1;
        let mut translation = translate_heap(heap);
        let lhs = Term::var(loc.solver_var());
        let rhs_term = translate_sym_expr(rhs, &mut translation);
        let goal = Formula::atom(lhs, op, rhs_term);
        let solver = self.fresh_solver(&translation);
        let proof = solver.prove(&goal);
        self.retired_solver_stats.merge(&solver.stats());
        proof
    }

    /// The incremental engine: sync the live solver to the heap's journal,
    /// then query inside a scope.
    fn prove_num_incremental(&mut self, heap: &Heap, loc: Loc, op: CmpOp, rhs: &CSymExpr) -> Proof {
        self.sync(heap);
        let mut translation = Translation::with_next_aux(self.aux_next);
        let lhs = Term::var(loc.solver_var());
        let rhs_term = translate_sym_expr(rhs, &mut translation);
        let goal = Formula::atom(lhs, op, rhs_term);
        if translation.formulas.is_empty() {
            return self.solver.prove(&goal);
        }
        // The goal introduced division witnesses: assert their defining
        // constraints in a query-local scope.
        self.aux_next = translation.next_aux;
        self.solver.push();
        for formula in translation.formulas {
            self.solver.assert(formula);
        }
        let proof = self.solver.prove(&goal);
        self.solver.pop();
        proof
    }

    /// A model of the heap's numeric constraints, for counterexample
    /// construction.
    pub fn heap_model(&mut self, heap: &Heap) -> Option<Model> {
        self.stats.queries += 1;
        self.stats.model_queries += 1;
        if self.config.fresh_per_query {
            self.stats.full_encodings += 1;
            let translation = translate_heap(heap);
            let solver = self.fresh_solver(&translation);
            let result = solver.check();
            self.retired_solver_stats.merge(&solver.stats());
            return match result {
                SmtResult::Sat(model) => Some(model),
                _ => None,
            };
        }
        self.sync(heap);
        match self.solver.check() {
            SmtResult::Sat(model) => Some(model),
            _ => None,
        }
    }

    fn fresh_solver(&self, translation: &Translation) -> Solver {
        let mut solver = Solver::with_config(self.config.solver);
        if let Some(pool) = &self.lemma_pool {
            solver.set_lemma_pool(pool.clone());
        }
        for formula in &translation.formulas {
            solver.assert(formula.clone());
        }
        solver
    }

    /// Brings the live solver's assertion stack in sync with `heap`:
    /// pops scopes for abandoned branches, retracts to the write-point of
    /// any non-monotone overwrite, asserts the unseen journal suffix, or —
    /// when a write-point falls inside the base encoding — re-encodes from
    /// scratch.
    fn sync(&mut self, heap: &Heap) {
        // Pop back to the deepest synchronized prefix this heap extends.
        while let Some(frame) = self.frames.last() {
            if extends(heap, frame) {
                break;
            }
            self.frames.pop();
            if !self.frames.is_empty() {
                self.solver.pop();
            }
        }
        let Some(frame) = self.frames.last() else {
            return self.full_sync(heap);
        };
        // Non-monotone overwrites in the unseen suffix: every formula about
        // an overwritten location was asserted for a journal position at or
        // after the location's write-point (carried by the rebase event), so
        // popping every frame that covers the earliest such write-point
        // retracts all of them — the rest of the solver state stays alive.
        let retract_to = heap
            .journal_suffix(frame.len)
            .filter_map(|entry| match entry.event {
                JournalEvent::Rebase { retract_to, .. } => Some(retract_to),
                _ => None,
            })
            .min();
        // Journal positions below this boundary had already been asserted
        // before this sync; formulas re-emitted for them after a retraction
        // pop are genuine *replays* (as opposed to first-time assertions of
        // new suffix events) and are counted as such.
        let replay_boundary = frame.len;
        if let Some(retract_to) = retract_to {
            if !self.config.retraction {
                // Ablation: the pre-retraction engine starts over.
                return self.full_sync(heap);
            }
            // The deepest frame whose journal coverage stops before the
            // write-point survives; everything above it is popped. Frame
            // lengths increase strictly with depth, and frame index i sits
            // at solver scope depth i (the base frame at scope 0).
            let Some(keep) = self.frames.iter().rposition(|f| f.len <= retract_to) else {
                // The write-point predates even the base encoding: nothing
                // to pop to, so the old cost model returns.
                return self.full_sync(heap);
            };
            let popped = self.frames.len() - 1 - keep;
            if popped > 0 {
                self.solver
                    .pop_to(keep)
                    .expect("frame ledger out of sync with solver scopes");
                self.frames.truncate(keep + 1);
            }
            self.stats.retractions += 1;
            self.stats.frames_popped += popped as u64;
        }
        let frame_len = self.frames.last().expect("a frame survives").len;
        if heap.journal_len() == frame_len {
            self.stats.reused_encodings += 1;
            return;
        }
        let mut translation = Translation::with_next_aux(self.aux_next);
        // Locations re-encoded wholesale by a Touched or Rebase event need
        // no per-refinement/per-entry delta formulas of their own (the
        // wholesale translation already reflects the location's final
        // state), and repeated events encode only once. A rebased location
        // is safe to encode wholesale precisely because the retraction pop
        // above removed every formula its older states contributed.
        let wholesale: std::collections::HashSet<Loc> = heap
            .journal_suffix(frame_len)
            .filter_map(|entry| match entry.event {
                JournalEvent::Touched(loc) | JournalEvent::Rebase { loc, .. } => Some(loc),
                _ => None,
            })
            .collect();
        let mut pending = wholesale.clone();
        for (offset, entry) in heap.journal_suffix(frame_len).enumerate() {
            let before = translation.formulas.len();
            match entry.event {
                JournalEvent::Touched(loc) | JournalEvent::Rebase { loc, .. } => {
                    if pending.remove(&loc) {
                        translate_loc(heap, loc, &mut translation);
                    }
                }
                JournalEvent::Refined(loc, index) => {
                    if !wholesale.contains(&loc) {
                        translate_refinement_at(heap, loc, index, &mut translation);
                    }
                }
                JournalEvent::EntryAdded(loc, index) => {
                    if !wholesale.contains(&loc) {
                        translate_entry_at(heap, loc, index, &mut translation);
                    }
                }
            }
            // A formula emitted for a position the session had synced before
            // the retraction pop is work being redone, not new work.
            if frame_len + offset < replay_boundary {
                self.stats.assertions_replayed += (translation.formulas.len() - before) as u64;
            }
        }
        self.aux_next = translation.next_aux;
        self.solver.push();
        for formula in translation.formulas {
            self.solver.assert(formula);
        }
        self.stats.delta_encodings += 1;
        self.frames.push(Frame {
            len: heap.journal_len(),
            fingerprint: heap.fingerprint(),
        });
    }

    /// Retracts the live solver's assertions and encodes the whole heap as
    /// the new base. Under the persistent solver core the solver object
    /// itself survives — its interned atoms, Tseitin encodings and theory
    /// lemmas carry over, so the re-encode pays hash lookups where the old
    /// engine paid fresh allocations (under `CPCF_SOLVER_CORE=scratch` the
    /// retraction is equivalent to the historical solver swap).
    fn full_sync(&mut self, heap: &Heap) {
        self.solver.clear_assertions();
        self.aux_next = SESSION_AUX_BASE;
        let mut translation = Translation::with_next_aux(self.aux_next);
        for (loc, _) in heap.iter() {
            translate_loc(heap, loc, &mut translation);
        }
        self.aux_next = translation.next_aux;
        for formula in translation.formulas {
            self.solver.assert(formula);
        }
        self.stats.full_encodings += 1;
        self.frames = vec![Frame {
            len: heap.journal_len(),
            fingerprint: heap.fingerprint(),
        }];
    }
}

/// Is `sub` a subtag of `sup` (every `sub` value is a `sup` value)?
fn subtag(sub: &Tag, sup: &Tag) -> bool {
    match (sub, sup) {
        _ if sub == sup => true,
        (Tag::Integer, Tag::Real | Tag::Number) => true,
        (Tag::Real, Tag::Number) => true,
        _ => false,
    }
}

/// Are two tags disjoint (no value has both)?
fn disjoint(a: &Tag, b: &Tag) -> bool {
    if subtag(a, b) || subtag(b, a) {
        return false;
    }
    // Number/Real/Integer overlap each other but nothing else; all remaining
    // tag pairs are disjoint.
    true
}

/// The three-valued tag verdict, computed from concrete values and tag
/// refinements alone.
fn tag_verdict(heap: &Heap, loc: Loc, tag: &Tag) -> Proof {
    match heap.get(loc) {
        SVal::Num(n) => concrete_tag(&number_tag(*n), tag),
        SVal::Bool(_) => concrete_tag(&Tag::Boolean, tag),
        SVal::Str(_) => concrete_tag(&Tag::StringT, tag),
        SVal::Nil => concrete_tag(&Tag::Null, tag),
        SVal::Pair(_, _) => concrete_tag(&Tag::Pair, tag),
        SVal::Closure { .. } | SVal::Guarded { .. } => concrete_tag(&Tag::Procedure, tag),
        SVal::StructVal { tag: name, .. } => concrete_tag(&Tag::Struct(name.clone()), tag),
        SVal::BoxVal(_) => concrete_tag(&Tag::BoxT, tag),
        SVal::Contract(_) => Proof::Refuted,
        SVal::Opaque { refinements, .. } => {
            for refinement in refinements {
                match refinement {
                    CRefinement::Is(known) => {
                        if subtag(known, tag) {
                            return Proof::Proved;
                        }
                        if disjoint(known, tag) {
                            return Proof::Refuted;
                        }
                    }
                    CRefinement::IsNot(known) => {
                        if subtag(tag, known) {
                            return Proof::Refuted;
                        }
                    }
                    CRefinement::NumCmp(_, _) => {
                        // Having a numeric refinement implies being a number.
                        if subtag(&Tag::Integer, tag) {
                            return Proof::Proved;
                        }
                    }
                    CRefinement::IsFalse => {
                        if *tag == Tag::Boolean {
                            return Proof::Proved;
                        }
                        if disjoint(&Tag::Boolean, tag) {
                            return Proof::Refuted;
                        }
                    }
                    CRefinement::IsTruthy => {}
                }
            }
            Proof::Ambiguous
        }
    }
}

fn number_tag(n: Number) -> Tag {
    if n.is_real() {
        Tag::Integer
    } else {
        Tag::Number
    }
}

fn concrete_tag(actual: &Tag, asked: &Tag) -> Proof {
    if subtag(actual, asked) {
        Proof::Proved
    } else if *actual == Tag::Number && matches!(asked, Tag::Real | Tag::Integer) {
        // A complex number is a number but not real/integer.
        Proof::Refuted
    } else {
        Proof::Refuted
    }
}

/// The result of translating a heap into formulas.
#[derive(Debug, Clone, Default)]
pub struct Translation {
    /// Conjuncts describing the heap's numeric content.
    pub formulas: Vec<Formula>,
    next_aux: u32,
}

impl Translation {
    /// An empty translation allocating auxiliary variables from `next_aux`.
    pub fn with_next_aux(next_aux: u32) -> Self {
        Translation {
            formulas: Vec::new(),
            next_aux,
        }
    }

    /// The next auxiliary variable index this translation would hand out.
    pub fn next_aux(&self) -> u32 {
        self.next_aux
    }

    fn fresh_aux(&mut self) -> Var {
        let var = Var::new(self.next_aux);
        self.next_aux += 1;
        var
    }
}

/// Translates the numeric portion of the whole heap into formulas, with
/// auxiliary variables allocated above the heap's own locations. This is the
/// encoding the `fresh_per_query` ablation performs on every query.
pub fn translate_heap(heap: &Heap) -> Translation {
    let mut translation = Translation::with_next_aux(heap.next_index());
    for (loc, _) in heap.iter() {
        translate_loc(heap, loc, &mut translation);
    }
    translation
}

/// Emits the formulas contributed by a single location: a defining equality
/// for concrete integers, and for opaque values their numeric refinements
/// plus the functionality constraints of the memo table.
fn translate_loc(heap: &Heap, loc: Loc, translation: &mut Translation) {
    match heap.try_get(loc) {
        Some(SVal::Num(Number::Int(n))) => {
            translation
                .formulas
                .push(Formula::eq(Term::var(loc.solver_var()), Term::int(*n)));
        }
        Some(SVal::Opaque {
            refinements,
            entries,
        }) => {
            for refinement in refinements {
                if let CRefinement::NumCmp(op, rhs) = refinement {
                    let rhs_term = translate_sym_expr(rhs, translation);
                    translation.formulas.push(Formula::atom(
                        Term::var(loc.solver_var()),
                        *op,
                        rhs_term,
                    ));
                }
            }
            // Functionality of the memo table: equal numeric inputs give
            // equal numeric outputs (only encoded for base-valued pairs).
            for i in 0..entries.len() {
                for j in (i + 1)..entries.len() {
                    functionality_formula(heap, entries[i], entries[j], translation);
                }
            }
        }
        _ => {}
    }
}

/// Emits the formula for one numeric refinement appended at `loc` (no-op for
/// tag refinements, which are never solver-encoded).
fn translate_refinement_at(heap: &Heap, loc: Loc, index: usize, translation: &mut Translation) {
    if let Some(SVal::Opaque { refinements, .. }) = heap.try_get(loc) {
        if let Some(CRefinement::NumCmp(op, rhs)) = refinements.get(index) {
            let rhs_term = translate_sym_expr(rhs, translation);
            translation
                .formulas
                .push(Formula::atom(Term::var(loc.solver_var()), *op, rhs_term));
        }
    }
}

/// Emits the functionality constraints pairing the memo entry appended at
/// `index` with every earlier entry of the same opaque function.
fn translate_entry_at(heap: &Heap, loc: Loc, index: usize, translation: &mut Translation) {
    if let Some(SVal::Opaque { entries, .. }) = heap.try_get(loc) {
        if let Some(&new_entry) = entries.get(index) {
            for &old_entry in &entries[..index.min(entries.len())] {
                functionality_formula(heap, old_entry, new_entry, translation);
            }
        }
    }
}

fn functionality_formula(
    heap: &Heap,
    (arg_i, res_i): (Loc, Loc),
    (arg_j, res_j): (Loc, Loc),
    translation: &mut Translation,
) {
    if is_base(heap, arg_i) && is_base(heap, arg_j) && is_base(heap, res_i) && is_base(heap, res_j)
    {
        translation.formulas.push(Formula::implies(
            Formula::eq(Term::var(arg_i.solver_var()), Term::var(arg_j.solver_var())),
            Formula::eq(Term::var(res_i.solver_var()), Term::var(res_j.solver_var())),
        ));
    }
}

fn is_base(heap: &Heap, loc: Loc) -> bool {
    matches!(
        heap.try_get(loc),
        Some(SVal::Num(_)) | Some(SVal::Opaque { .. })
    )
}

/// Translates a symbolic expression, adding division side constraints.
pub fn translate_sym_expr(expr: &CSymExpr, translation: &mut Translation) -> Term {
    match expr {
        CSymExpr::Loc(l) => Term::var(l.solver_var()),
        CSymExpr::Const(n) => Term::int(*n),
        CSymExpr::Add(a, b) => Term::add(
            translate_sym_expr(a, translation),
            translate_sym_expr(b, translation),
        ),
        CSymExpr::Sub(a, b) => Term::sub(
            translate_sym_expr(a, translation),
            translate_sym_expr(b, translation),
        ),
        CSymExpr::Mul(a, b) => Term::mul(
            translate_sym_expr(a, translation),
            translate_sym_expr(b, translation),
        ),
        CSymExpr::Div(a, b) | CSymExpr::Mod(a, b) => {
            let dividend = translate_sym_expr(a, translation);
            let divisor = translate_sym_expr(b, translation);
            let quotient = Term::var(translation.fresh_aux());
            let remainder = Term::var(translation.fresh_aux());
            translation.formulas.push(Formula::eq(
                dividend.clone(),
                Term::add(
                    Term::mul(quotient.clone(), divisor.clone()),
                    remainder.clone(),
                ),
            ));
            translation.formulas.push(Formula::implies(
                Formula::gt(divisor.clone(), Term::int(0)),
                Formula::and(vec![
                    Formula::lt(remainder.clone(), divisor.clone()),
                    Formula::lt(Term::neg(divisor.clone()), remainder.clone()),
                ]),
            ));
            translation.formulas.push(Formula::implies(
                Formula::lt(divisor.clone(), Term::int(0)),
                Formula::and(vec![
                    Formula::lt(remainder.clone(), Term::neg(divisor.clone())),
                    Formula::lt(divisor, remainder.clone()),
                ]),
            ));
            translation.formulas.push(Formula::or(vec![
                Formula::eq(remainder.clone(), Term::int(0)),
                Formula::and(vec![
                    Formula::gt(dividend.clone(), Term::int(0)),
                    Formula::gt(remainder.clone(), Term::int(0)),
                ]),
                Formula::and(vec![
                    Formula::lt(dividend, Term::int(0)),
                    Formula::lt(remainder.clone(), Term::int(0)),
                ]),
            ]));
            if matches!(expr, CSymExpr::Div(_, _)) {
                quotient
            } else {
                remainder
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_lattice() {
        assert!(subtag(&Tag::Integer, &Tag::Number));
        assert!(subtag(&Tag::Integer, &Tag::Real));
        assert!(!subtag(&Tag::Number, &Tag::Integer));
        assert!(disjoint(&Tag::Pair, &Tag::Procedure));
        assert!(!disjoint(&Tag::Integer, &Tag::Number));
    }

    #[test]
    fn concrete_values_have_decided_tags() {
        let mut heap = Heap::new();
        let n = heap.alloc(SVal::Num(Number::Int(3)));
        let c = heap.alloc(SVal::Num(Number::complex(0, 1)));
        let p = heap.alloc(SVal::Pair(n, c));
        let mut session = ProverSession::new();
        assert_eq!(session.prove_tag(&heap, n, &Tag::Integer), Proof::Proved);
        assert_eq!(session.prove_tag(&heap, n, &Tag::Number), Proof::Proved);
        assert_eq!(session.prove_tag(&heap, c, &Tag::Number), Proof::Proved);
        assert_eq!(session.prove_tag(&heap, c, &Tag::Real), Proof::Refuted);
        assert_eq!(session.prove_tag(&heap, p, &Tag::Pair), Proof::Proved);
        assert_eq!(session.prove_tag(&heap, p, &Tag::Number), Proof::Refuted);
    }

    #[test]
    fn refinements_decide_tags() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        let mut session = ProverSession::new();
        assert_eq!(session.prove_tag(&heap, l, &Tag::Pair), Proof::Ambiguous);
        heap.refine(l, CRefinement::Is(Tag::Integer));
        assert_eq!(session.prove_tag(&heap, l, &Tag::Number), Proof::Proved);
        assert_eq!(session.prove_tag(&heap, l, &Tag::Pair), Proof::Refuted);
    }

    #[test]
    fn negative_refinements_refute() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::IsNot(Tag::Pair));
        let mut session = ProverSession::new();
        assert_eq!(session.prove_tag(&heap, l, &Tag::Pair), Proof::Refuted);
        assert_eq!(session.prove_tag(&heap, l, &Tag::Number), Proof::Ambiguous);
    }

    #[test]
    fn numeric_refinements_feed_the_solver() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5)));
        let mut session = ProverSession::new();
        assert_eq!(
            session.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0)),
            Proof::Proved
        );
        assert_eq!(
            session.prove_num(&heap, l, CmpOp::Eq, &CSymExpr::int(0)),
            Proof::Refuted
        );
        assert_eq!(
            session.prove_num(&heap, l, CmpOp::Eq, &CSymExpr::int(7)),
            Proof::Ambiguous
        );
    }

    #[test]
    fn heap_model_solves_linked_refinements() {
        let mut heap = Heap::new();
        let n = heap.alloc_fresh_opaque();
        let d = heap.alloc_fresh_opaque();
        heap.refine(
            d,
            CRefinement::NumCmp(
                CmpOp::Eq,
                CSymExpr::Sub(Box::new(CSymExpr::int(100)), Box::new(CSymExpr::loc(n))),
            ),
        );
        heap.refine(d, CRefinement::NumCmp(CmpOp::Eq, CSymExpr::int(0)));
        let mut session = ProverSession::new();
        let model = session.heap_model(&heap).expect("satisfiable");
        assert_eq!(model.value(n.solver_var()), Some(100));
    }

    #[test]
    fn memo_table_functionality_is_encoded() {
        let mut heap = Heap::new();
        let a = heap.alloc(SVal::Num(Number::Int(5)));
        let b = heap.alloc(SVal::Num(Number::Int(5)));
        let x = heap.alloc(SVal::Num(Number::Int(1)));
        let y = heap.alloc(SVal::Num(Number::Int(0)));
        let f = heap.alloc_fresh_opaque();
        heap.set(
            f,
            SVal::Opaque {
                refinements: vec![CRefinement::Is(Tag::Procedure)],
                entries: vec![(a, x), (b, y)],
            },
        );
        let mut session = ProverSession::new();
        assert!(
            session.heap_model(&heap).is_none(),
            "5 ↦ 1 and 5 ↦ 0 conflict"
        );
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5)));
        let mut session = ProverSession::new();
        let first = session.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0));
        let second = session.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0));
        assert_eq!(first, second);
        let stats = session.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(
            stats.full_encodings, 1,
            "the heap is encoded once, not twice"
        );
    }

    #[test]
    fn shared_cache_exchanges_verdicts_between_sessions() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5)));
        let cache = SharedVerdictCache::new();
        let mut first = ProverSession::with_config_and_cache(ProveConfig::default(), cache.clone());
        let mut second =
            ProverSession::with_config_and_cache(ProveConfig::default(), cache.clone());
        let a = first.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0));
        let b = second.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0));
        assert_eq!(a, b);
        assert_eq!(first.stats().shared_cache_hits, 0, "first session computed");
        assert_eq!(
            second.stats().shared_cache_hits,
            1,
            "second session inherited the verdict"
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(
            second.stats().full_encodings + second.stats().delta_encodings,
            0,
            "the inherited verdict needed no solver work"
        );
    }

    #[test]
    fn shared_cache_counts_cross_epoch_hits() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5)));
        let cache = SharedVerdictCache::new();
        let mut first = ProverSession::with_config_and_cache(ProveConfig::default(), cache.clone());
        first.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0));
        cache.advance_epoch();
        // A later run (new session, same heap content) hits the entry
        // planted before the epoch boundary.
        let mut second =
            ProverSession::with_config_and_cache(ProveConfig::default(), cache.clone());
        second.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0));
        assert_eq!(cache.cross_epoch_hits(), 1);
        // Same-epoch hits do not count as cross-epoch.
        let mut third = ProverSession::with_config_and_cache(ProveConfig::default(), cache.clone());
        third.prove_num(&heap, l, CmpOp::Le, &CSymExpr::int(4));
        let mut fourth =
            ProverSession::with_config_and_cache(ProveConfig::default(), cache.clone());
        fourth.prove_num(&heap, l, CmpOp::Le, &CSymExpr::int(4));
        assert_eq!(cache.cross_epoch_hits(), 1, "same-epoch hit not counted");
        assert!(cache.hits() >= 2);
    }

    #[test]
    fn shared_cache_is_bypassed_in_fresh_mode() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5)));
        let cache = SharedVerdictCache::new();
        let config = ProveConfig {
            fresh_per_query: true,
            ..ProveConfig::default()
        };
        let mut session = ProverSession::with_config_and_cache(config, cache.clone());
        session.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0));
        session.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0));
        assert!(cache.is_empty(), "fresh mode must not populate the cache");
        assert_eq!(session.stats().cache_hits, 0);
    }

    #[test]
    fn shared_cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedVerdictCache>();
    }

    #[test]
    fn journal_growth_encodes_only_the_delta() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5)));
        let mut session = ProverSession::new();
        assert_eq!(
            session.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0)),
            Proof::Proved
        );
        // Grow the same path: only the new constraint should be asserted.
        heap.refine(l, CRefinement::NumCmp(CmpOp::Le, CSymExpr::int(10)));
        assert_eq!(
            session.prove_num(&heap, l, CmpOp::Lt, &CSymExpr::int(11)),
            Proof::Proved
        );
        let stats = session.stats();
        assert_eq!(stats.full_encodings, 1);
        assert_eq!(stats.delta_encodings, 1);
    }

    #[test]
    fn sibling_branches_pop_back_to_the_shared_prefix() {
        let mut parent = Heap::new();
        let l = parent.alloc_fresh_opaque();
        parent.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(0)));
        let mut session = ProverSession::new();
        assert_eq!(
            session.prove_num(&parent, l, CmpOp::Ge, &CSymExpr::int(0)),
            Proof::Proved
        );
        let mut yes = parent.clone();
        yes.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(10)));
        let mut no = parent.clone();
        no.refine(l, CRefinement::NumCmp(CmpOp::Lt, CSymExpr::int(10)));
        assert_eq!(
            session.prove_num(&yes, l, CmpOp::Ge, &CSymExpr::int(10)),
            Proof::Proved
        );
        assert_eq!(
            session.prove_num(&no, l, CmpOp::Lt, &CSymExpr::int(10)),
            Proof::Proved
        );
        let stats = session.stats();
        assert_eq!(
            stats.full_encodings, 1,
            "the shared prefix is never re-encoded"
        );
        assert_eq!(stats.delta_encodings, 2, "one delta per branch");
    }

    #[test]
    fn rebases_force_a_full_reencode() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5)));
        let mut session = ProverSession::new();
        assert_eq!(
            session.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0)),
            Proof::Proved
        );
        // Non-monotone overwrite: the numeric constraint disappears.
        let car = heap.alloc_fresh_opaque();
        let cdr = heap.alloc_fresh_opaque();
        heap.set(l, SVal::Pair(car, cdr));
        let m = heap.alloc_fresh_opaque();
        assert_eq!(
            session.prove_num(&heap, m, CmpOp::Eq, &CSymExpr::int(0)),
            Proof::Ambiguous,
            "the stale `l ≥ 5` constraint must not leak into the new state"
        );
        assert_eq!(session.stats().full_encodings, 2);
    }

    #[test]
    fn overwriting_memo_referenced_locations_rebases() {
        // An opaque function's memo table [(a, r1), (b, r2)] with r1 ≥ 0 and
        // r2 ≤ -1 entails a ≠ b via functionality. Structurally refining `a`
        // to a pair afterwards retracts that implication (the baseline's
        // is_base check drops it), so the incremental session must rebase
        // rather than keep the stale formula.
        let mut heap = Heap::new();
        let f = heap.alloc_fresh_opaque();
        let a = heap.alloc_fresh_opaque();
        let b = heap.alloc_fresh_opaque();
        let r1 = heap.alloc_fresh_opaque();
        let r2 = heap.alloc_fresh_opaque();
        heap.refine(r1, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(0)));
        heap.refine(r2, CRefinement::NumCmp(CmpOp::Le, CSymExpr::int(-1)));
        heap.set(
            f,
            SVal::Opaque {
                refinements: Vec::new(),
                entries: vec![(a, r1), (b, r2)],
            },
        );
        let mut incremental = ProverSession::new();
        let mut fresh = ProverSession::with_config(ProveConfig {
            fresh_per_query: true,
            ..ProveConfig::default()
        });
        // Both engines derive a ≠ b while the entries are base-valued; this
        // also plants the functionality implication on the live solver.
        let before_incremental = incremental.prove_num(&heap, a, CmpOp::Ne, &CSymExpr::loc(b));
        let before_fresh = fresh.prove_num(&heap, a, CmpOp::Ne, &CSymExpr::loc(b));
        assert_eq!(before_incremental, Proof::Proved);
        assert_eq!(before_incremental, before_fresh);
        // Structural refinement: `a` becomes a pair (non-base).
        let car = heap.alloc_fresh_opaque();
        let cdr = heap.alloc_fresh_opaque();
        heap.set(a, SVal::Pair(car, cdr));
        assert!(
            matches!(
                heap.last_journal_event().unwrap(),
                crate::heap::JournalEvent::Rebase { loc, .. } if loc == a
            ),
            "a non-base overwrite of a memo-referenced location must rebase"
        );
        let after_incremental = incremental.prove_num(&heap, a, CmpOp::Ne, &CSymExpr::loc(b));
        let after_fresh = fresh.prove_num(&heap, a, CmpOp::Ne, &CSymExpr::loc(b));
        assert_eq!(
            after_incremental, after_fresh,
            "stale functionality constraints must not survive the overwrite"
        );
    }

    #[test]
    fn alloc_then_refine_delta_asserts_each_formula_once() {
        let mut heap = Heap::new();
        let l0 = heap.alloc_fresh_opaque();
        heap.refine(l0, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(0)));
        let mut session = ProverSession::new();
        assert_eq!(
            session.prove_num(&heap, l0, CmpOp::Gt, &CSymExpr::int(-1)),
            Proof::Proved
        );
        // A fresh allocation refined twice since the last sync: the delta
        // must assert exactly the two new formulas, not re-emit the
        // refinements on top of the wholesale encoding of the allocation.
        let l1 = heap.alloc_fresh_opaque();
        heap.refine(l1, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5)));
        heap.refine(l1, CRefinement::NumCmp(CmpOp::Le, CSymExpr::int(9)));
        assert_eq!(
            session.prove_num(&heap, l1, CmpOp::Gt, &CSymExpr::int(0)),
            Proof::Proved
        );
        let stats = session.stats();
        assert_eq!(
            stats.solver.assertions, 3,
            "1 base formula + 2 delta formulas, no duplicates: {stats:?}"
        );
    }

    /// An explicit engine configuration, independent of the
    /// `CPCF_PROVE_MODE` environment variable CI uses to flip the default.
    fn engine(fresh_per_query: bool, retraction: bool) -> ProveConfig {
        ProveConfig {
            solver: folic::SolverConfig::default(),
            fresh_per_query,
            cache: true,
            retraction,
        }
    }

    /// Builds the scenario where retraction pays: constraints entering the
    /// stream across several delta frames, then a non-monotone overwrite of
    /// a location whose write-point lies *above* the base frame.
    fn overwrite_above_base(session: &mut ProverSession) -> (Heap, Loc, Loc, Loc) {
        let mut heap = Heap::new();
        let l0 = heap.alloc_fresh_opaque(); // 0
        heap.refine(l0, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(0))); // 1
        assert_eq!(
            session.prove_num(&heap, l0, CmpOp::Gt, &CSymExpr::int(-1)),
            Proof::Proved,
            "base frame"
        );
        let l1 = heap.alloc_fresh_opaque(); // 2
        heap.refine(l1, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5))); // 3 = l1's write-point
        assert_eq!(
            session.prove_num(&heap, l1, CmpOp::Gt, &CSymExpr::int(0)),
            Proof::Proved,
            "first delta frame"
        );
        let l2 = heap.alloc_fresh_opaque(); // 4
        heap.refine(l2, CRefinement::NumCmp(CmpOp::Le, CSymExpr::int(2))); // 5
        assert_eq!(
            session.prove_num(&heap, l2, CmpOp::Lt, &CSymExpr::int(3)),
            Proof::Proved,
            "second delta frame"
        );
        // Structural refinement of l1: non-monotone, write-point 3.
        let car = heap.alloc_fresh_opaque();
        let cdr = heap.alloc_fresh_opaque();
        heap.set(l1, SVal::Pair(car, cdr));
        assert!(matches!(
            heap.last_journal_event().unwrap(),
            JournalEvent::Rebase { loc, retract_to: 3 } if loc == l1
        ));
        (heap, l0, l1, l2)
    }

    #[test]
    fn retraction_pops_to_the_write_point_instead_of_reencoding() {
        let mut session = ProverSession::with_config(engine(false, true));
        let (heap, l0, l1, l2) = overwrite_above_base(&mut session);
        // The surviving constraints are replayed, the stale one is gone.
        assert_eq!(
            session.prove_num(&heap, l2, CmpOp::Le, &CSymExpr::int(2)),
            Proof::Proved,
            "the replayed suffix must keep l2's constraint alive"
        );
        assert_eq!(
            session.prove_num(&heap, l0, CmpOp::Ge, &CSymExpr::int(0)),
            Proof::Proved,
            "the base frame survives untouched"
        );
        assert_eq!(
            session.prove_num(&heap, l1, CmpOp::Ge, &CSymExpr::int(5)),
            Proof::Ambiguous,
            "the stale `l1 >= 5` constraint must not survive the overwrite"
        );
        let stats = session.stats();
        assert_eq!(stats.full_encodings, 1, "never re-encoded: {stats:?}");
        assert_eq!(stats.retractions, 1, "{stats:?}");
        assert_eq!(
            stats.frames_popped, 2,
            "both delta frames cover the write-point: {stats:?}"
        );
        assert_eq!(
            stats.assertions_replayed, 1,
            "exactly l2's constraint is replayed: {stats:?}"
        );
    }

    #[test]
    fn rebase_ablation_reencodes_where_retraction_pops() {
        let mut session = ProverSession::with_config(engine(false, false));
        let (heap, _, l1, l2) = overwrite_above_base(&mut session);
        assert_eq!(
            session.prove_num(&heap, l2, CmpOp::Le, &CSymExpr::int(2)),
            Proof::Proved
        );
        assert_eq!(
            session.prove_num(&heap, l1, CmpOp::Ge, &CSymExpr::int(5)),
            Proof::Ambiguous
        );
        let stats = session.stats();
        assert_eq!(
            stats.full_encodings, 2,
            "the ablation starts over on the rebase: {stats:?}"
        );
        assert_eq!(stats.retractions, 0, "{stats:?}");
        assert_eq!(stats.frames_popped, 0, "{stats:?}");
        assert_eq!(stats.assertions_replayed, 0, "{stats:?}");
    }

    #[test]
    fn retraction_falls_back_to_reencoding_below_the_base_frame() {
        // When the overwritten location's constraints are part of the base
        // (scope-0) encoding there is nothing to pop to, and the retraction
        // engine degrades to exactly the rebase engine's behaviour.
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5)));
        let mut session = ProverSession::with_config(engine(false, true));
        assert_eq!(
            session.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0)),
            Proof::Proved
        );
        let car = heap.alloc_fresh_opaque();
        let cdr = heap.alloc_fresh_opaque();
        heap.set(l, SVal::Pair(car, cdr));
        let m = heap.alloc_fresh_opaque();
        assert_eq!(
            session.prove_num(&heap, m, CmpOp::Eq, &CSymExpr::int(0)),
            Proof::Ambiguous
        );
        let stats = session.stats();
        assert_eq!(stats.full_encodings, 2, "{stats:?}");
        assert_eq!(stats.retractions, 0, "{stats:?}");
    }

    #[test]
    fn retraction_handles_memo_functionality_overwrites() {
        // The memo-table variant of the retraction scenario: functionality
        // constraints enter the stream in a delta frame, the overwrite of a
        // memo-referenced location retracts them, and verdicts match the
        // fresh baseline before and after.
        let mut retraction = ProverSession::with_config(engine(false, true));
        let mut fresh = ProverSession::with_config(engine(true, false));
        let mut heap = Heap::new();
        let anchor = heap.alloc_fresh_opaque();
        heap.refine(anchor, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(0)));
        for session in [&mut retraction, &mut fresh] {
            assert_eq!(
                session.prove_num(&heap, anchor, CmpOp::Ge, &CSymExpr::int(0)),
                Proof::Proved
            );
        }
        let f = heap.alloc_fresh_opaque();
        let a = heap.alloc_fresh_opaque();
        let b = heap.alloc_fresh_opaque();
        let r1 = heap.alloc_fresh_opaque();
        let r2 = heap.alloc_fresh_opaque();
        heap.refine(r1, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(0)));
        heap.refine(r2, CRefinement::NumCmp(CmpOp::Le, CSymExpr::int(-1)));
        heap.set(
            f,
            SVal::Opaque {
                refinements: Vec::new(),
                entries: vec![(a, r1), (b, r2)],
            },
        );
        // Functionality entails a != b while both entries are base-valued.
        let query = |session: &mut ProverSession, heap: &Heap| {
            session.prove_num(heap, a, CmpOp::Ne, &CSymExpr::loc(b))
        };
        assert_eq!(query(&mut retraction, &heap), Proof::Proved);
        assert_eq!(query(&mut fresh, &heap), Proof::Proved);
        // Overwriting `a` with a non-base value retracts the implication.
        let car = heap.alloc_fresh_opaque();
        let cdr = heap.alloc_fresh_opaque();
        heap.set(a, SVal::Pair(car, cdr));
        let after_retraction = query(&mut retraction, &heap);
        assert_eq!(
            after_retraction,
            query(&mut fresh, &heap),
            "retraction and fresh baselines disagree after the overwrite"
        );
        let stats = retraction.stats();
        assert_eq!(
            stats.full_encodings, 1,
            "the overwrite is absorbed by retraction: {stats:?}"
        );
        assert_eq!(stats.retractions, 1, "{stats:?}");
    }

    #[test]
    fn fresh_per_query_matches_incremental_verdicts() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5)));
        heap.refine(l, CRefinement::NumCmp(CmpOp::Le, CSymExpr::int(9)));
        let queries = [
            (CmpOp::Gt, CSymExpr::int(0)),
            (CmpOp::Eq, CSymExpr::int(7)),
            (CmpOp::Gt, CSymExpr::int(9)),
            (CmpOp::Le, CSymExpr::int(9)),
        ];
        let mut incremental = ProverSession::new();
        let mut fresh = ProverSession::with_config(ProveConfig {
            fresh_per_query: true,
            ..ProveConfig::default()
        });
        for (op, rhs) in &queries {
            assert_eq!(
                incremental.prove_num(&heap, l, *op, rhs),
                fresh.prove_num(&heap, l, *op, rhs),
                "verdicts diverge on {op:?} {rhs:?}"
            );
        }
        assert!(incremental.stats().full_encodings < incremental.stats().queries);
        assert_eq!(fresh.stats().full_encodings, fresh.stats().num_queries);
    }
}
