//! Reasoning about opaque values: tag-level reasoning done directly on
//! refinements, numeric reasoning delegated to the first-order solver.
//!
//! As in the typed core, only *base values* are ever encoded for the solver
//! (Fig. 4): numeric refinements become integer formulas, the memo tables of
//! opaque functions become functionality constraints, and everything
//! higher-order stays on the semantics side.

use folic::{CmpOp, Formula, Model, Proof, SmtResult, Solver, SolverConfig, Term, Var};

use crate::heap::{CRefinement, CSymExpr, Heap, Loc, SVal, Tag};
use crate::numeric::Number;

/// Configuration for solver queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProveConfig {
    /// Underlying solver configuration.
    pub solver: SolverConfig,
}

/// The prover: tag reasoning plus numeric queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct Prover {
    /// Query configuration.
    pub config: ProveConfig,
}

/// Is `sub` a subtag of `sup` (every `sub` value is a `sup` value)?
fn subtag(sub: &Tag, sup: &Tag) -> bool {
    match (sub, sup) {
        _ if sub == sup => true,
        (Tag::Integer, Tag::Real | Tag::Number) => true,
        (Tag::Real, Tag::Number) => true,
        _ => false,
    }
}

/// Are two tags disjoint (no value has both)?
fn disjoint(a: &Tag, b: &Tag) -> bool {
    if subtag(a, b) || subtag(b, a) {
        return false;
    }
    // Number/Real/Integer overlap each other but nothing else; all remaining
    // tag pairs are disjoint.
    true
}

impl Prover {
    /// Creates a prover with defaults.
    pub fn new() -> Self {
        Prover::default()
    }

    /// Does the value at `loc` have tag `tag`? Three-valued, using concrete
    /// values and tag refinements.
    pub fn prove_tag(&self, heap: &Heap, loc: Loc, tag: &Tag) -> Proof {
        match heap.get(loc) {
            SVal::Num(n) => concrete_tag(&number_tag(*n), tag),
            SVal::Bool(_) => concrete_tag(&Tag::Boolean, tag),
            SVal::Str(_) => concrete_tag(&Tag::StringT, tag),
            SVal::Nil => concrete_tag(&Tag::Null, tag),
            SVal::Pair(_, _) => concrete_tag(&Tag::Pair, tag),
            SVal::Closure { .. } | SVal::Guarded { .. } => concrete_tag(&Tag::Procedure, tag),
            SVal::StructVal { tag: name, .. } => concrete_tag(&Tag::Struct(name.clone()), tag),
            SVal::BoxVal(_) => concrete_tag(&Tag::BoxT, tag),
            SVal::Contract(_) => Proof::Refuted,
            SVal::Opaque { refinements, .. } => {
                for refinement in refinements {
                    match refinement {
                        CRefinement::Is(known) => {
                            if subtag(known, tag) {
                                return Proof::Proved;
                            }
                            if disjoint(known, tag) {
                                return Proof::Refuted;
                            }
                        }
                        CRefinement::IsNot(known) => {
                            if subtag(tag, known) {
                                return Proof::Refuted;
                            }
                        }
                        CRefinement::NumCmp(_, _) => {
                            // Having a numeric refinement implies being a number.
                            if subtag(&Tag::Integer, tag) {
                                return Proof::Proved;
                            }
                        }
                        CRefinement::IsFalse => {
                            if *tag == Tag::Boolean {
                                return Proof::Proved;
                            }
                            if disjoint(&Tag::Boolean, tag) {
                                return Proof::Refuted;
                            }
                        }
                        CRefinement::IsTruthy => {}
                    }
                }
                Proof::Ambiguous
            }
        }
    }

    /// Does the numeric value at `loc` stand in relation `op` to `rhs`?
    pub fn prove_num(&self, heap: &Heap, loc: Loc, op: CmpOp, rhs: &CSymExpr) -> Proof {
        let mut translation = translate_heap(heap);
        let lhs = Term::var(loc.solver_var());
        let rhs_term = translate_sym_expr(rhs, &mut translation);
        let goal = Formula::atom(lhs, op, rhs_term);
        let mut solver = Solver::with_config(self.config.solver);
        for formula in &translation.formulas {
            solver.assert(formula.clone());
        }
        solver.prove(&goal)
    }

    /// A model of the heap's numeric constraints, for counterexample
    /// construction.
    pub fn heap_model(&self, heap: &Heap) -> Option<Model> {
        let translation = translate_heap(heap);
        let mut solver = Solver::with_config(self.config.solver);
        for formula in &translation.formulas {
            solver.assert(formula.clone());
        }
        match solver.check() {
            SmtResult::Sat(model) => Some(model),
            _ => None,
        }
    }
}

fn number_tag(n: Number) -> Tag {
    if n.is_real() {
        Tag::Integer
    } else {
        Tag::Number
    }
}

fn concrete_tag(actual: &Tag, asked: &Tag) -> Proof {
    if subtag(actual, asked) {
        Proof::Proved
    } else if *actual == Tag::Number && matches!(asked, Tag::Real | Tag::Integer) {
        // A complex number is a number but not real/integer.
        Proof::Refuted
    } else {
        Proof::Refuted
    }
}

/// The result of translating a heap into formulas.
#[derive(Debug, Clone, Default)]
pub struct Translation {
    /// Conjuncts describing the heap's numeric content.
    pub formulas: Vec<Formula>,
    next_aux: u32,
}

impl Translation {
    fn fresh_aux(&mut self) -> Var {
        let var = Var::new(self.next_aux);
        self.next_aux += 1;
        var
    }
}

/// Translates the numeric portion of the heap into formulas.
pub fn translate_heap(heap: &Heap) -> Translation {
    let mut translation = Translation {
        formulas: Vec::new(),
        next_aux: heap.next_index(),
    };
    for (loc, value) in heap.iter() {
        match value {
            SVal::Num(Number::Int(n)) => {
                translation
                    .formulas
                    .push(Formula::eq(Term::var(loc.solver_var()), Term::int(*n)));
            }
            SVal::Opaque { refinements, entries } => {
                for refinement in refinements {
                    if let CRefinement::NumCmp(op, rhs) = refinement {
                        let rhs_term = translate_sym_expr(rhs, &mut translation);
                        translation.formulas.push(Formula::atom(
                            Term::var(loc.solver_var()),
                            *op,
                            rhs_term,
                        ));
                    }
                }
                // Functionality of the memo table: equal numeric inputs give
                // equal numeric outputs (only encoded for base-valued pairs).
                for i in 0..entries.len() {
                    for j in (i + 1)..entries.len() {
                        let (arg_i, res_i) = entries[i];
                        let (arg_j, res_j) = entries[j];
                        if is_base(heap, arg_i) && is_base(heap, arg_j)
                            && is_base(heap, res_i) && is_base(heap, res_j)
                        {
                            translation.formulas.push(Formula::implies(
                                Formula::eq(
                                    Term::var(arg_i.solver_var()),
                                    Term::var(arg_j.solver_var()),
                                ),
                                Formula::eq(
                                    Term::var(res_i.solver_var()),
                                    Term::var(res_j.solver_var()),
                                ),
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    translation
}

fn is_base(heap: &Heap, loc: Loc) -> bool {
    matches!(
        heap.try_get(loc),
        Some(SVal::Num(_)) | Some(SVal::Opaque { .. })
    )
}

/// Translates a symbolic expression, adding division side constraints.
pub fn translate_sym_expr(expr: &CSymExpr, translation: &mut Translation) -> Term {
    match expr {
        CSymExpr::Loc(l) => Term::var(l.solver_var()),
        CSymExpr::Const(n) => Term::int(*n),
        CSymExpr::Add(a, b) => Term::add(
            translate_sym_expr(a, translation),
            translate_sym_expr(b, translation),
        ),
        CSymExpr::Sub(a, b) => Term::sub(
            translate_sym_expr(a, translation),
            translate_sym_expr(b, translation),
        ),
        CSymExpr::Mul(a, b) => Term::mul(
            translate_sym_expr(a, translation),
            translate_sym_expr(b, translation),
        ),
        CSymExpr::Div(a, b) | CSymExpr::Mod(a, b) => {
            let dividend = translate_sym_expr(a, translation);
            let divisor = translate_sym_expr(b, translation);
            let quotient = Term::var(translation.fresh_aux());
            let remainder = Term::var(translation.fresh_aux());
            translation.formulas.push(Formula::eq(
                dividend.clone(),
                Term::add(Term::mul(quotient.clone(), divisor.clone()), remainder.clone()),
            ));
            translation.formulas.push(Formula::implies(
                Formula::gt(divisor.clone(), Term::int(0)),
                Formula::and(vec![
                    Formula::lt(remainder.clone(), divisor.clone()),
                    Formula::lt(Term::neg(divisor.clone()), remainder.clone()),
                ]),
            ));
            translation.formulas.push(Formula::implies(
                Formula::lt(divisor.clone(), Term::int(0)),
                Formula::and(vec![
                    Formula::lt(remainder.clone(), Term::neg(divisor.clone())),
                    Formula::lt(divisor, remainder.clone()),
                ]),
            ));
            translation.formulas.push(Formula::or(vec![
                Formula::eq(remainder.clone(), Term::int(0)),
                Formula::and(vec![
                    Formula::gt(dividend.clone(), Term::int(0)),
                    Formula::gt(remainder.clone(), Term::int(0)),
                ]),
                Formula::and(vec![
                    Formula::lt(dividend, Term::int(0)),
                    Formula::lt(remainder.clone(), Term::int(0)),
                ]),
            ]));
            if matches!(expr, CSymExpr::Div(_, _)) {
                quotient
            } else {
                remainder
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_lattice() {
        assert!(subtag(&Tag::Integer, &Tag::Number));
        assert!(subtag(&Tag::Integer, &Tag::Real));
        assert!(!subtag(&Tag::Number, &Tag::Integer));
        assert!(disjoint(&Tag::Pair, &Tag::Procedure));
        assert!(!disjoint(&Tag::Integer, &Tag::Number));
    }

    #[test]
    fn concrete_values_have_decided_tags() {
        let mut heap = Heap::new();
        let n = heap.alloc(SVal::Num(Number::Int(3)));
        let c = heap.alloc(SVal::Num(Number::complex(0, 1)));
        let p = heap.alloc(SVal::Pair(n, c));
        let prover = Prover::new();
        assert_eq!(prover.prove_tag(&heap, n, &Tag::Integer), Proof::Proved);
        assert_eq!(prover.prove_tag(&heap, n, &Tag::Number), Proof::Proved);
        assert_eq!(prover.prove_tag(&heap, c, &Tag::Number), Proof::Proved);
        assert_eq!(prover.prove_tag(&heap, c, &Tag::Real), Proof::Refuted);
        assert_eq!(prover.prove_tag(&heap, p, &Tag::Pair), Proof::Proved);
        assert_eq!(prover.prove_tag(&heap, p, &Tag::Number), Proof::Refuted);
    }

    #[test]
    fn refinements_decide_tags() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        let prover = Prover::new();
        assert_eq!(prover.prove_tag(&heap, l, &Tag::Pair), Proof::Ambiguous);
        heap.refine(l, CRefinement::Is(Tag::Integer));
        assert_eq!(prover.prove_tag(&heap, l, &Tag::Number), Proof::Proved);
        assert_eq!(prover.prove_tag(&heap, l, &Tag::Pair), Proof::Refuted);
    }

    #[test]
    fn negative_refinements_refute() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::IsNot(Tag::Pair));
        let prover = Prover::new();
        assert_eq!(prover.prove_tag(&heap, l, &Tag::Pair), Proof::Refuted);
        assert_eq!(prover.prove_tag(&heap, l, &Tag::Number), Proof::Ambiguous);
    }

    #[test]
    fn numeric_refinements_feed_the_solver() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5)));
        let prover = Prover::new();
        assert_eq!(
            prover.prove_num(&heap, l, CmpOp::Gt, &CSymExpr::int(0)),
            Proof::Proved
        );
        assert_eq!(
            prover.prove_num(&heap, l, CmpOp::Eq, &CSymExpr::int(0)),
            Proof::Refuted
        );
        assert_eq!(
            prover.prove_num(&heap, l, CmpOp::Eq, &CSymExpr::int(7)),
            Proof::Ambiguous
        );
    }

    #[test]
    fn heap_model_solves_linked_refinements() {
        let mut heap = Heap::new();
        let n = heap.alloc_fresh_opaque();
        let d = heap.alloc_fresh_opaque();
        heap.refine(
            d,
            CRefinement::NumCmp(
                CmpOp::Eq,
                CSymExpr::Sub(Box::new(CSymExpr::int(100)), Box::new(CSymExpr::loc(n))),
            ),
        );
        heap.refine(d, CRefinement::NumCmp(CmpOp::Eq, CSymExpr::int(0)));
        let prover = Prover::new();
        let model = prover.heap_model(&heap).expect("satisfiable");
        assert_eq!(model.value(n.solver_var()), Some(100));
    }

    #[test]
    fn memo_table_functionality_is_encoded() {
        let mut heap = Heap::new();
        let a = heap.alloc(SVal::Num(Number::Int(5)));
        let b = heap.alloc(SVal::Num(Number::Int(5)));
        let x = heap.alloc(SVal::Num(Number::Int(1)));
        let y = heap.alloc(SVal::Num(Number::Int(0)));
        let f = heap.alloc_fresh_opaque();
        heap.set(
            f,
            SVal::Opaque {
                refinements: vec![CRefinement::Is(Tag::Procedure)],
                entries: vec![(a, x), (b, y)],
            },
        );
        let prover = Prover::new();
        assert!(prover.heap_model(&heap).is_none(), "5 ↦ 1 and 5 ↦ 0 conflict");
    }
}
