//! The symbolic heap for CPCF: locations, storeable values, refinements on
//! opaque values, and first-class contract values.
//!
//! Compared to the typed core (the `spcf` crate), values are dynamically
//! tagged: an opaque value accumulates *tag refinements* (`pair?`,
//! `procedure?`, `integer?`, …) alongside numeric refinements, and is
//! structurally refined in place when a tag test determines its shape (an
//! opaque value known to be a pair becomes a pair of fresh opaque values, as
//! §4.2 of the paper describes for user-defined data structures).
//!
//! ## Snapshot representation
//!
//! The symbolic evaluator returns *all* outcomes, each paired with its own
//! heap, so every state split (`truthiness`, tag predicates, contract
//! branches, havoc) snapshots the entire heap via [`Heap::clone`]. The heap
//! is therefore built for **O(1) snapshots with structural sharing** rather
//! than for deep copies:
//!
//! * the location store, the opaque-label table, the memo-reference set and
//!   the write-point ledger are persistent copy-on-write maps
//!   ([`crate::pmap::PMap`]) — a snapshot copies one pointer per map, and a
//!   later write copies only the tree path still shared with other
//!   snapshots;
//! * the constraint journal is an **`Arc`-shared chain of immutable
//!   chunks**: a snapshot captures `(chain, len)` and keeps appending on
//!   either side cheap — an append copies at most the unsealed tail chunk
//!   (and only when that tail is still shared), never the O(path-length)
//!   prefix the old `Vec` journal cloned at every branch split.
//!
//! The journal's *content* — event order, fingerprint chain, write-points —
//! is bit-identical to the old deep-clone representation (a property fuzzed
//! by `randtest`'s shadow-heap differential), so incremental prover
//! sessions, retraction and the fingerprint-keyed verdict caches are
//! unaffected consumers. Sharing is observable through the thread-local
//! counters in [`crate::pmap::sharing_totals`]: snapshots taken, map nodes
//! copied by shared-path writes, and journal bytes shared instead of
//! copied.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::Arc;

use folic::CmpOp;

use crate::pmap::PMap;

use crate::numeric::Number;
use crate::syntax::{Expr, Label};

/// A heap location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(u32);

impl Loc {
    /// Creates a location from an index.
    pub fn new(index: u32) -> Self {
        Loc(index)
    }

    /// The index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// The solver variable standing for this location's numeric value.
    pub fn solver_var(self) -> folic::Var {
        folic::Var::new(self.0)
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Environments map names to locations; shared so closures are cheap.
pub type Env = Rc<HashMap<String, Loc>>;

/// Creates an empty environment.
pub fn empty_env() -> Env {
    Rc::new(HashMap::new())
}

/// Extends an environment with new bindings.
pub fn extend_env(env: &Env, bindings: impl IntoIterator<Item = (String, Loc)>) -> Env {
    let mut map = (**env).clone();
    map.extend(bindings);
    Rc::new(map)
}

/// Dynamic type tags used by refinements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Tag {
    /// Any number (including complex).
    Number,
    /// A real number.
    Real,
    /// An exact integer.
    Integer,
    /// A procedure.
    Procedure,
    /// A pair.
    Pair,
    /// The empty list.
    Null,
    /// A boolean.
    Boolean,
    /// A string.
    StringT,
    /// A mutable box.
    BoxT,
    /// An instance of the named struct.
    Struct(String),
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tag::Number => write!(f, "number?"),
            Tag::Real => write!(f, "real?"),
            Tag::Integer => write!(f, "integer?"),
            Tag::Procedure => write!(f, "procedure?"),
            Tag::Pair => write!(f, "pair?"),
            Tag::Null => write!(f, "null?"),
            Tag::Boolean => write!(f, "boolean?"),
            Tag::StringT => write!(f, "string?"),
            Tag::BoxT => write!(f, "box?"),
            Tag::Struct(name) => write!(f, "{name}?"),
        }
    }
}

/// Symbolic integer expressions over locations (right-hand sides of numeric
/// refinements).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CSymExpr {
    /// A location's numeric value.
    Loc(Loc),
    /// A constant.
    Const(i64),
    /// Addition.
    Add(Box<CSymExpr>, Box<CSymExpr>),
    /// Subtraction.
    Sub(Box<CSymExpr>, Box<CSymExpr>),
    /// Multiplication.
    Mul(Box<CSymExpr>, Box<CSymExpr>),
    /// Truncated division.
    Div(Box<CSymExpr>, Box<CSymExpr>),
    /// Remainder.
    Mod(Box<CSymExpr>, Box<CSymExpr>),
}

impl CSymExpr {
    /// A location operand.
    pub fn loc(l: Loc) -> Self {
        CSymExpr::Loc(l)
    }

    /// A constant operand.
    pub fn int(n: i64) -> Self {
        CSymExpr::Const(n)
    }
}

impl fmt::Display for CSymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CSymExpr::Loc(l) => write!(f, "{l}"),
            CSymExpr::Const(n) => write!(f, "{n}"),
            CSymExpr::Add(a, b) => write!(f, "(+ {a} {b})"),
            CSymExpr::Sub(a, b) => write!(f, "(- {a} {b})"),
            CSymExpr::Mul(a, b) => write!(f, "(* {a} {b})"),
            CSymExpr::Div(a, b) => write!(f, "(/ {a} {b})"),
            CSymExpr::Mod(a, b) => write!(f, "(modulo {a} {b})"),
        }
    }
}

/// A refinement on an opaque value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CRefinement {
    /// The value has this tag.
    Is(Tag),
    /// The value does not have this tag.
    IsNot(Tag),
    /// The value is a number standing in `op` relation to the expression.
    NumCmp(CmpOp, CSymExpr),
    /// The value is the boolean `false` (used for falsity branches).
    IsFalse,
    /// The value is a true value (anything but `#f`).
    IsTruthy,
}

impl fmt::Display for CRefinement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CRefinement::Is(tag) => write!(f, "{tag}"),
            CRefinement::IsNot(tag) => write!(f, "(not {tag})"),
            CRefinement::NumCmp(op, rhs) => write!(f, "(λx. ({op} x {rhs}))"),
            CRefinement::IsFalse => write!(f, "false?"),
            CRefinement::IsTruthy => write!(f, "truthy?"),
        }
    }
}

/// A first-class contract value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractVal {
    /// A flat contract: the location of a predicate.
    Flat(Loc),
    /// A function contract with domain and range contract locations.
    Func {
        /// Domain contracts.
        doms: Vec<Loc>,
        /// Range contract.
        rng: Loc,
    },
    /// Conjunction of contracts.
    And(Vec<Loc>),
    /// Disjunction of contracts.
    Or(Vec<Loc>),
    /// Contract on pairs.
    Cons(Loc, Loc),
    /// Contract on proper lists.
    ListOf(Loc),
    /// Membership in a fixed set of values.
    OneOf(Vec<Loc>),
    /// The trivial contract.
    Any,
}

/// A storeable value.
#[derive(Debug, Clone, PartialEq)]
pub enum SVal {
    /// A number.
    Num(Number),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// The empty list.
    Nil,
    /// A pair of locations.
    Pair(Loc, Loc),
    /// A closure, remembering the module that owns its code (for blame).
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: Expr,
        /// Captured environment.
        env: Env,
        /// Owning party (module name or "context").
        owner: String,
    },
    /// A struct instance.
    StructVal {
        /// Struct tag.
        tag: String,
        /// Field locations.
        fields: Vec<Loc>,
    },
    /// A mutable box.
    BoxVal(Loc),
    /// A contract value.
    Contract(ContractVal),
    /// A function wrapped in a function contract (a "guarded" value).
    Guarded {
        /// Domain contract locations.
        doms: Vec<Loc>,
        /// Range contract location.
        rng: Loc,
        /// The wrapped function.
        inner: Loc,
        /// Positive blame party (the function's provider).
        pos: String,
        /// Negative blame party (the function's client).
        neg: String,
        /// Monitor label.
        label: Label,
    },
    /// An opaque value with accumulated refinements and (when used as a
    /// function on simple arguments) a memo table of applications.
    Opaque {
        /// Refinements learned along the current path.
        refinements: Vec<CRefinement>,
        /// Memoised `(argument, result)` pairs (the `case` map).
        entries: Vec<(Loc, Loc)>,
    },
}

impl SVal {
    /// A fresh, completely unknown opaque value.
    pub fn opaque() -> SVal {
        SVal::Opaque {
            refinements: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// True if this is an opaque value.
    pub fn is_opaque(&self) -> bool {
        matches!(self, SVal::Opaque { .. })
    }

    /// The number stored, if any.
    pub fn as_num(&self) -> Option<Number> {
        match self {
            SVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The exact integer stored, if any.
    pub fn as_int(&self) -> Option<i64> {
        self.as_num().and_then(Number::as_int)
    }
}

impl fmt::Display for SVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SVal::Num(n) => write!(f, "{n}"),
            SVal::Bool(b) => write!(f, "{}", if *b { "#t" } else { "#f" }),
            SVal::Str(s) => write!(f, "{s:?}"),
            SVal::Nil => write!(f, "'()"),
            SVal::Pair(a, b) => write!(f, "(cons {a} {b})"),
            SVal::Closure { params, owner, .. } => {
                write!(f, "#<procedure:{}({})>", owner, params.join(" "))
            }
            SVal::StructVal { tag, fields } => {
                write!(f, "({tag}")?;
                for field in fields {
                    write!(f, " {field}")?;
                }
                write!(f, ")")
            }
            SVal::BoxVal(l) => write!(f, "(box {l})"),
            SVal::Contract(_) => write!(f, "#<contract>"),
            SVal::Guarded { inner, .. } => write!(f, "#<guarded {inner}>"),
            SVal::Opaque { refinements, .. } => {
                write!(f, "•")?;
                for r in refinements {
                    write!(f, ", {r}")?;
                }
                Ok(())
            }
        }
    }
}

/// One event in the heap's constraint journal.
///
/// The journal records, in order, every mutation that can affect the heap's
/// first-order encoding. A branch-cloned heap shares its parent's journal
/// prefix, so an incremental prover session can tell exactly which suffix of
/// events it has not yet asserted — heaps are append-mostly along a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalEvent {
    /// The location was freshly allocated, or overwritten by a value whose
    /// predecessor contributed no formulas; its encoding must be (re)emitted
    /// wholesale.
    Touched(Loc),
    /// `refinements[index]` was appended to the opaque value at the location
    /// (only `NumCmp` refinements contribute formulas, but every appended
    /// refinement advances the fingerprint used as a cache key).
    Refined(Loc, usize),
    /// `entries[index]` was appended to the memo table at the location; the
    /// new entry pairs with every earlier one in the functionality encoding.
    EntryAdded(Loc, usize),
    /// A non-monotone overwrite: formulas previously encoded from this
    /// location may no longer hold. `retract_to` is the location's
    /// *write-point* — the journal position at which the earliest formula
    /// depending on the location entered the formula stream — so an
    /// incremental consumer only needs to discard solver state covering
    /// journal positions at or after `retract_to` and replay the surviving
    /// suffix, instead of re-encoding the whole heap.
    Rebase {
        /// The overwritten location.
        loc: Loc,
        /// The overwritten location's write-point: every formula depending
        /// on it was asserted for a journal position `>= retract_to`.
        retract_to: usize,
    },
}

/// A journal event together with the heap fingerprint *after* the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// What happened.
    pub event: JournalEvent,
    /// The fingerprint chain value after applying the event.
    pub fingerprint: u64,
}

/// Entries per sealed journal chunk. Small enough that the worst-case
/// append (copying a shared, nearly-full tail chunk) stays cheap; large
/// enough that the chain walk per journal access is short.
const JOURNAL_CHUNK: usize = 64;

/// One immutable chunk of the journal chain. `prev` chunks are always
/// sealed (exactly [`JOURNAL_CHUNK`] entries, `base` a multiple of it); the
/// tail chunk grows in place while it is uniquely owned and is copied —
/// alone — when a snapshot still shares it.
#[derive(Debug, Clone)]
struct JournalChunk {
    prev: Option<Arc<JournalChunk>>,
    /// Journal position of `entries[0]`.
    base: usize,
    entries: Vec<JournalEntry>,
}

/// The persistent journal: an `Arc`-shared chunk chain plus a length. A
/// snapshot clones the tail pointer and the length — O(1) regardless of how
/// long the path is — and appends after a snapshot copy at most one chunk.
///
/// Invariant: `len == tail.base + tail.entries.len()` (0 for the empty
/// journal). Appends to a shared tail copy it first, so no holder ever
/// observes entries beyond its own `len`.
#[derive(Debug, Clone, Default)]
struct PJournal {
    tail: Option<Arc<JournalChunk>>,
    len: usize,
}

impl PJournal {
    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, entry: JournalEntry) {
        match &mut self.tail {
            None => {
                self.tail = Some(Arc::new(JournalChunk {
                    prev: None,
                    base: 0,
                    entries: vec![entry],
                }));
            }
            Some(arc) => {
                let filled = self.len - arc.base;
                debug_assert_eq!(filled, arc.entries.len());
                if filled == JOURNAL_CHUNK {
                    // Seal the full tail and chain a fresh chunk onto it.
                    let prev = self.tail.take();
                    self.tail = Some(Arc::new(JournalChunk {
                        prev,
                        base: self.len,
                        entries: vec![entry],
                    }));
                } else if let Some(chunk) = Arc::get_mut(arc) {
                    chunk.entries.push(entry);
                } else {
                    // The tail is still shared with a snapshot: copy this
                    // one chunk (bounded by JOURNAL_CHUNK) and append to the
                    // copy; the sealed prefix stays shared.
                    let mut entries = Vec::with_capacity((filled + 1).max(8));
                    entries.extend_from_slice(&arc.entries[..filled]);
                    entries.push(entry);
                    self.tail = Some(Arc::new(JournalChunk {
                        prev: arc.prev.clone(),
                        base: arc.base,
                        entries,
                    }));
                }
            }
        }
        self.len += 1;
    }

    /// The entry at `position`.
    ///
    /// # Panics
    ///
    /// Panics when `position >= len`.
    fn entry(&self, position: usize) -> JournalEntry {
        assert!(
            position < self.len,
            "journal position {position} out of bounds (len {})",
            self.len
        );
        let mut chunk = self.tail.as_deref().expect("non-empty journal");
        while position < chunk.base {
            chunk = chunk
                .prev
                .as_deref()
                .expect("chunk chain covers every journal position");
        }
        chunk.entries[position - chunk.base]
    }

    /// Iterates entries from position `from` (inclusive) to the end, in
    /// order. `from` values at or beyond the length yield nothing.
    fn iter_from(&self, from: usize) -> impl Iterator<Item = JournalEntry> + '_ {
        let mut chunks: Vec<&JournalChunk> = Vec::new();
        let mut link = self.tail.as_deref();
        while let Some(chunk) = link {
            chunks.push(chunk);
            if chunk.base <= from {
                break;
            }
            link = chunk.prev.as_deref();
        }
        chunks.reverse();
        chunks.into_iter().flat_map(move |chunk| {
            let skip = from.saturating_sub(chunk.base);
            chunk.entries[skip.min(chunk.entries.len())..]
                .iter()
                .copied()
        })
    }
}

impl PartialEq for PJournal {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        match (&self.tail, &other.tail) {
            (None, None) => true,
            // Snapshots sharing their tail chunk are equal without a walk.
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) => true,
            _ => self.iter_from(0).eq(other.iter_from(0)),
        }
    }
}

/// The symbolic heap.
///
/// `Clone` is an O(1) *snapshot*: every component is either `Copy` or a
/// persistent structure sharing its nodes with the clone (see the module
/// docs). The evaluator clones heaps at every state split, so this is the
/// hottest path in the whole analysis.
#[derive(Debug, PartialEq, Default)]
pub struct Heap {
    entries: PMap<Loc, SVal>,
    opaque_locs: PMap<Label, Loc>,
    next: u32,
    journal: PJournal,
    fingerprint: u64,
    /// Locations referenced (as argument or result) by some memo-table
    /// entry. The functionality encoding emits implications over these
    /// locations' solver variables, justified by their base-ness at encoding
    /// time — so overwriting one with a non-base value invalidates formulas
    /// held *elsewhere* and must rebase incremental consumers. Grows
    /// monotonically (a conservative over-approximation).
    memo_refs: PMap<Loc, ()>,
    /// Per-location *write-points*: the journal position at which the
    /// earliest formula depending on the location entered the formula
    /// stream. A formula depends on a location when it constrains the
    /// location's solver variable — its defining equality (concrete
    /// integers), its numeric refinements, or a functionality implication of
    /// a memo table whose entry references it. A consumer that asserted the
    /// journal's formulas in order therefore retracts *every* formula about
    /// a location by discarding solver state covering positions at or after
    /// its write-point. Reset (not merely kept) on a [`JournalEvent::Rebase`]
    /// of the location, because the rebase itself retracts the older
    /// formulas and the location's new constraints enter at the rebase
    /// position.
    write_points: PMap<Loc, usize>,
}

impl Clone for Heap {
    /// Takes an O(1) snapshot: pointer copies into every persistent
    /// component, no journal or entry copying. Also feeds the thread-local
    /// sharing counters ([`crate::pmap::sharing_totals`]) so harnesses can
    /// report how many snapshots were taken and how many journal bytes the
    /// sharing avoided copying.
    fn clone(&self) -> Self {
        crate::pmap::note_snapshot(
            (self.journal.len() * std::mem::size_of::<JournalEntry>()) as u64,
        );
        Heap {
            entries: self.entries.clone(),
            opaque_locs: self.opaque_locs.clone(),
            next: self.next,
            journal: self.journal.clone(),
            fingerprint: self.fingerprint,
            memo_refs: self.memo_refs.clone(),
            write_points: self.write_points.clone(),
        }
    }
}

/// A cheap, deterministic summary of a storeable value, mixed into the
/// fingerprint chain so that sibling branches that mutate the same location
/// differently end up with different fingerprints.
///
/// Exposed (hidden) for `randtest`'s shadow heap, which replays the same
/// algebra on the old deep-clone representation for differential testing.
#[doc(hidden)]
pub fn content_hash(value: &SVal) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::mem::discriminant(value).hash(&mut hasher);
    match value {
        SVal::Num(Number::Int(n)) => n.hash(&mut hasher),
        SVal::Num(Number::Complex(re, im)) => (re, im).hash(&mut hasher),
        SVal::Bool(b) => b.hash(&mut hasher),
        SVal::Str(s) => s.hash(&mut hasher),
        SVal::Nil => {}
        SVal::Pair(a, b) => (a, b).hash(&mut hasher),
        SVal::Closure { params, owner, .. } => (params, owner).hash(&mut hasher),
        SVal::StructVal { tag, fields } => (tag, fields).hash(&mut hasher),
        SVal::BoxVal(inner) => inner.hash(&mut hasher),
        SVal::Contract(_) => {}
        SVal::Guarded {
            inner, pos, neg, ..
        } => (inner, pos, neg).hash(&mut hasher),
        SVal::Opaque {
            refinements,
            entries,
        } => (refinements, entries).hash(&mut hasher),
    }
    hasher.finish()
}

/// True if the value contributes formulas to the heap's first-order
/// encoding, so overwriting it is a non-monotone change.
///
/// Exposed (hidden) for `randtest`'s shadow heap; see [`content_hash`].
#[doc(hidden)]
pub fn encodes_formulas(value: &SVal) -> bool {
    match value {
        SVal::Num(Number::Int(_)) => true,
        SVal::Opaque {
            refinements,
            entries,
        } => {
            entries.len() >= 2
                || refinements
                    .iter()
                    .any(|r| matches!(r, CRefinement::NumCmp(_, _)))
        }
        _ => false,
    }
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Number of allocated locations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocates a fresh location.
    pub fn alloc(&mut self, value: SVal) -> Loc {
        let loc = Loc::new(self.next);
        self.next += 1;
        let hash = content_hash(&value);
        self.note_memo_refs(&value);
        self.entries.insert(loc, value);
        self.record(JournalEvent::Touched(loc), hash);
        loc
    }

    /// Records the locations referenced by a value's memo entries.
    fn note_memo_refs(&mut self, value: &SVal) {
        if let SVal::Opaque { entries, .. } = value {
            for &(arg, res) in entries {
                self.memo_refs.insert(arg, ());
                self.memo_refs.insert(res, ());
            }
        }
    }

    /// Sets `loc`'s write-point to `position` unless an earlier one exists
    /// (the `BTreeMap::entry(..).or_insert(..)` of the old representation).
    fn write_point_if_absent(&mut self, loc: Loc, position: usize) {
        if !self.write_points.contains_key(&loc) {
            self.write_points.insert(loc, position);
        }
    }

    /// Allocates (or reuses) the location for an opaque source label.
    pub fn alloc_opaque(&mut self, label: Label) -> Loc {
        if let Some(&loc) = self.opaque_locs.get(&label) {
            return loc;
        }
        let loc = self.alloc(SVal::opaque());
        self.opaque_locs.insert(label, loc);
        loc
    }

    /// Allocates a fresh anonymous opaque value.
    pub fn alloc_fresh_opaque(&mut self) -> Loc {
        self.alloc(SVal::opaque())
    }

    /// The location of an opaque source label, if it was reached.
    pub fn opaque_loc(&self, label: Label) -> Option<Loc> {
        self.opaque_locs.get(&label).copied()
    }

    /// Looks up a location.
    ///
    /// # Panics
    ///
    /// Panics on a dangling location (an engine bug, not a user error).
    pub fn get(&self, loc: Loc) -> &SVal {
        self.entries
            .get(&loc)
            .unwrap_or_else(|| panic!("dangling location {loc}"))
    }

    /// Looks up a location without panicking.
    pub fn try_get(&self, loc: Loc) -> Option<&SVal> {
        self.entries.get(&loc)
    }

    /// Replaces the value at a location, journalling the change.
    ///
    /// An opaque value growing into a superset opaque value (appended
    /// refinements or memo entries) is recorded as the individual monotone
    /// additions; overwriting a value that already contributed formulas is a
    /// [`JournalEvent::Rebase`], telling incremental consumers their solver
    /// state is stale.
    pub fn set(&mut self, loc: Loc, value: SVal) {
        enum Change {
            Monotone(Vec<JournalEvent>),
            Touched,
            Rebase,
        }
        let change = match (self.entries.get(&loc), &value) {
            (
                Some(SVal::Opaque {
                    refinements: old_r,
                    entries: old_e,
                }),
                SVal::Opaque {
                    refinements: new_r,
                    entries: new_e,
                },
            ) if new_r.len() >= old_r.len()
                && new_r[..old_r.len()] == old_r[..]
                && new_e.len() >= old_e.len()
                && new_e[..old_e.len()] == old_e[..] =>
            {
                let mut events = Vec::new();
                for index in old_r.len()..new_r.len() {
                    events.push(JournalEvent::Refined(loc, index));
                }
                for index in old_e.len()..new_e.len() {
                    events.push(JournalEvent::EntryAdded(loc, index));
                }
                Change::Monotone(events)
            }
            (Some(old), _) if encodes_formulas(old) => Change::Rebase,
            // The location's solver variable appears in a functionality
            // implication of some memo table, justified by this location
            // being base-valued; a non-base overwrite retracts that formula.
            (Some(_), new)
                if self.memo_refs.contains_key(&loc)
                    && !matches!(new, SVal::Num(_) | SVal::Opaque { .. }) =>
            {
                Change::Rebase
            }
            _ => Change::Touched,
        };
        let hash = content_hash(&value);
        // The write-point is read *before* the overwrite is journalled: it
        // bounds the formulas already in the stream, which the rebase event
        // tells consumers to retract. A missing write-point (impossible for
        // the overwrite patterns that trigger a rebase, but cheap to guard)
        // degrades to position 0, i.e. "retract everything".
        let retract_to = self.write_points.get(&loc).copied().unwrap_or(0);
        self.note_memo_refs(&value);
        self.entries.insert(loc, value);
        match change {
            Change::Monotone(events) => {
                for event in events {
                    self.record(event, hash);
                }
            }
            Change::Touched => self.record(JournalEvent::Touched(loc), hash),
            Change::Rebase => self.record(JournalEvent::Rebase { loc, retract_to }, hash),
        }
    }

    /// Adds a refinement to the opaque value at `loc`.
    ///
    /// # Panics
    ///
    /// Panics if the location does not hold an opaque value.
    pub fn refine(&mut self, loc: Loc, refinement: CRefinement) {
        // Immutable probe first: a duplicate refinement is a documented
        // no-op and must not path-copy snapshot-shared map nodes the way a
        // `get_mut` walk would.
        match self.entries.get(&loc) {
            Some(SVal::Opaque { refinements, .. }) => {
                if refinements.contains(&refinement) {
                    return;
                }
            }
            other => panic!("refining non-opaque location {loc}: {other:?}"),
        }
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        refinement.hash(&mut hasher);
        let hash = hasher.finish();
        let index = match self.entries.get_mut(&loc) {
            Some(SVal::Opaque { refinements, .. }) => {
                refinements.push(refinement);
                refinements.len() - 1
            }
            _ => unreachable!("probed opaque above"),
        };
        self.record(JournalEvent::Refined(loc, index), hash);
    }

    /// Appends a journal event, advancing the fingerprint chain (FNV-1a
    /// style mixing of the event and a content summary) and maintaining the
    /// per-location write-points.
    fn record(&mut self, event: JournalEvent, content: u64) {
        self.note_write_points(&event);
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.fingerprint.hash(&mut hasher);
        std::mem::discriminant(&event).hash(&mut hasher);
        match event {
            JournalEvent::Touched(loc) | JournalEvent::Rebase { loc, .. } => loc.hash(&mut hasher),
            JournalEvent::Refined(loc, index) | JournalEvent::EntryAdded(loc, index) => {
                (loc, index).hash(&mut hasher)
            }
        }
        content.hash(&mut hasher);
        self.fingerprint = hasher.finish();
        self.journal.push(JournalEntry {
            event,
            fingerprint: self.fingerprint,
        });
    }

    /// Updates the write-point ledger for the event about to be journalled
    /// at the current journal position. Called with the mutation already
    /// applied to `entries`, so the event's value can be inspected.
    ///
    /// The invariant maintained: every formula depending on a location is
    /// emitted by a consumer for a journal position `>=` the location's
    /// write-point. Wholesale (re-)encodings of a location may emit formulas
    /// reflecting state journalled *before* the encoding's own position, but
    /// only state whose own events already carry earlier write-points, so
    /// first-contribution positions are a sound lower bound.
    fn note_write_points(&mut self, event: &JournalEvent) {
        let position = self.journal.len();
        match *event {
            JournalEvent::Touched(loc) => {
                self.note_value_write_points(loc, position, false);
            }
            JournalEvent::Rebase { loc, .. } => {
                // The rebase retracts every older formula about `loc`; its
                // new constraints enter the stream here.
                self.write_points.insert(loc, position);
                self.note_value_write_points(loc, position, true);
            }
            JournalEvent::Refined(loc, index) => {
                let numeric = matches!(
                    self.entries.get(&loc),
                    Some(SVal::Opaque { refinements, .. })
                        if matches!(refinements.get(index), Some(CRefinement::NumCmp(_, _)))
                );
                if numeric {
                    self.write_point_if_absent(loc, position);
                }
            }
            JournalEvent::EntryAdded(loc, index) => {
                let entry = match self.entries.get(&loc) {
                    Some(SVal::Opaque { entries, .. }) => entries.get(index).copied(),
                    _ => None,
                };
                self.write_point_if_absent(loc, position);
                if let Some((arg, res)) = entry {
                    self.write_point_if_absent(arg, position);
                    self.write_point_if_absent(res, position);
                }
            }
        }
    }

    /// Write-points contributed by the value now stored at `loc`: the
    /// location itself when the value encodes formulas, plus every location
    /// referenced by a memo entry (the functionality encoding constrains
    /// their solver variables too). `skip_self` is set by rebases, which
    /// have already reset the location's own write-point.
    fn note_value_write_points(&mut self, loc: Loc, position: usize, skip_self: bool) {
        let Some(value) = self.entries.get(&loc) else {
            return;
        };
        let encodes = encodes_formulas(value);
        let memo: Vec<(Loc, Loc)> = match value {
            SVal::Opaque { entries, .. } => entries.clone(),
            _ => Vec::new(),
        };
        if !skip_self && encodes {
            self.write_point_if_absent(loc, position);
        }
        for (arg, res) in memo {
            self.write_point_if_absent(arg, position);
            self.write_point_if_absent(res, position);
        }
    }

    /// Number of events in the constraint journal.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// The journal entry at `position` (0-based, oldest first).
    ///
    /// # Panics
    ///
    /// Panics when `position >= journal_len()`.
    pub fn journal_entry(&self, position: usize) -> JournalEntry {
        self.journal.entry(position)
    }

    /// Iterates the journal suffix starting at `from` (inclusive), oldest
    /// first. `from` values at or beyond the length yield nothing. This is
    /// the accessor incremental consumers use to read the delta between a
    /// synchronized prefix and the heap's current state; it walks the shared
    /// chunk chain without copying entries.
    pub fn journal_suffix(&self, from: usize) -> impl Iterator<Item = JournalEntry> + '_ {
        self.journal.iter_from(from)
    }

    /// The most recent journal event, if any (a test convenience).
    pub fn last_journal_event(&self) -> Option<JournalEvent> {
        self.journal
            .len()
            .checked_sub(1)
            .map(|last| self.journal.entry(last).event)
    }

    /// The fingerprint of the journal prefix of length `len`: 0 for the
    /// empty prefix (matching a fresh heap's fingerprint), otherwise the
    /// chain value after the prefix's last event.
    ///
    /// # Panics
    ///
    /// Panics when `len > journal_len()`.
    pub fn journal_fingerprint_at(&self, len: usize) -> u64 {
        if len == 0 {
            0
        } else {
            self.journal.entry(len - 1).fingerprint
        }
    }

    /// The heap's generation: how many journalled mutations produced it.
    /// A branch-cloned heap's generation extends its parent's.
    pub fn generation(&self) -> u64 {
        self.journal.len() as u64
    }

    /// A fingerprint identifying this heap's mutation history. Two heaps
    /// with equal fingerprints have (up to 64-bit hash collisions) the same
    /// journal and therefore the same constraint content; sibling branches
    /// diverge immediately because their first differing mutation mixes
    /// different content into the chain.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The write-point of `loc`: the journal position at which the earliest
    /// formula depending on the location entered the formula stream, or
    /// `None` while no formula depends on it. [`JournalEvent::Rebase`]
    /// carries the pre-overwrite value of this, as `retract_to`.
    pub fn write_point(&self, loc: Loc) -> Option<usize> {
        self.write_points.get(&loc).copied()
    }

    /// The refinements on `loc` (empty when not opaque).
    pub fn refinements(&self, loc: Loc) -> &[CRefinement] {
        match self.try_get(loc) {
            Some(SVal::Opaque { refinements, .. }) => refinements,
            _ => &[],
        }
    }

    /// True if the opaque value at `loc` carries the given refinement.
    pub fn has_refinement(&self, loc: Loc, refinement: &CRefinement) -> bool {
        self.refinements(loc).contains(refinement)
    }

    /// The concrete number at `loc`, if it holds one.
    pub fn num_at(&self, loc: Loc) -> Option<Number> {
        self.try_get(loc).and_then(SVal::as_num)
    }

    /// The concrete integer at `loc`, if it holds one.
    pub fn int_at(&self, loc: Loc) -> Option<i64> {
        self.try_get(loc).and_then(SVal::as_int)
    }

    /// Iterates over allocated locations in order.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, &SVal)> + '_ {
        self.entries.iter().map(|(l, v)| (*l, v))
    }

    /// Index of the next allocation (for fresh solver variables).
    pub fn next_index(&self) -> u32 {
        self.next
    }
}

impl fmt::Display for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[")?;
        for (loc, value) in self.iter() {
            writeln!(f, "  {loc} ↦ {value}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_lookup() {
        let mut heap = Heap::new();
        let a = heap.alloc(SVal::Num(Number::Int(1)));
        let b = heap.alloc(SVal::Bool(true));
        assert_eq!(heap.int_at(a), Some(1));
        assert_eq!(heap.get(b), &SVal::Bool(true));
        assert_eq!(heap.len(), 2);
    }

    #[test]
    fn opaque_reuse_per_label() {
        let mut heap = Heap::new();
        let a = heap.alloc_opaque(Label(1));
        let b = heap.alloc_opaque(Label(1));
        let c = heap.alloc_opaque(Label(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(heap.opaque_loc(Label(1)), Some(a));
    }

    #[test]
    fn refinements_deduplicate() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::Is(Tag::Integer));
        heap.refine(l, CRefinement::Is(Tag::Integer));
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(0)));
        assert_eq!(heap.refinements(l).len(), 2);
        assert!(heap.has_refinement(l, &CRefinement::Is(Tag::Integer)));
    }

    #[test]
    fn structural_refinement_replaces_opaque() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        let car = heap.alloc_fresh_opaque();
        let cdr = heap.alloc_fresh_opaque();
        heap.set(l, SVal::Pair(car, cdr));
        assert!(matches!(heap.get(l), SVal::Pair(_, _)));
    }

    #[test]
    fn environments_extend_without_mutating() {
        let base = empty_env();
        let extended = extend_env(&base, vec![("x".to_string(), Loc::new(0))]);
        assert!(base.get("x").is_none());
        assert_eq!(extended.get("x"), Some(&Loc::new(0)));
    }

    #[test]
    fn journal_records_monotone_growth() {
        let mut heap = Heap::new();
        assert_eq!(heap.generation(), 0);
        let l = heap.alloc_fresh_opaque();
        assert!(matches!(
            heap.last_journal_event().unwrap(),
            JournalEvent::Touched(_)
        ));
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(0)));
        assert_eq!(
            heap.last_journal_event().unwrap(),
            JournalEvent::Refined(l, 0)
        );
        // Duplicate refinements do not advance the journal.
        let generation = heap.generation();
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(0)));
        assert_eq!(heap.generation(), generation);
    }

    #[test]
    fn branch_clones_extend_the_parent_journal() {
        let mut parent = Heap::new();
        let l = parent.alloc_fresh_opaque();
        let mut yes = parent.clone();
        yes.refine(l, CRefinement::Is(Tag::Integer));
        let mut no = parent.clone();
        no.refine(l, CRefinement::IsNot(Tag::Integer));
        // Both children extend the parent's journal prefix...
        let parent_len = parent.journal_len();
        assert!(yes
            .journal_suffix(0)
            .take(parent_len)
            .eq(parent.journal_suffix(0)));
        assert!(no
            .journal_suffix(0)
            .take(parent_len)
            .eq(parent.journal_suffix(0)));
        // ...but diverge in fingerprint at the first differing event.
        assert_ne!(yes.fingerprint(), no.fingerprint());
        assert_ne!(yes.fingerprint(), parent.fingerprint());
    }

    #[test]
    fn superset_opaque_overwrite_is_monotone() {
        let mut heap = Heap::new();
        let f = heap.alloc_fresh_opaque();
        let a = heap.alloc(SVal::Num(Number::Int(5)));
        let r = heap.alloc_fresh_opaque();
        // Appending a memo entry via `set` (as apply_opaque does) journals an
        // EntryAdded, not a rebase.
        if let SVal::Opaque {
            refinements,
            entries,
        } = heap.get(f).clone()
        {
            let mut entries = entries;
            entries.push((a, r));
            heap.set(
                f,
                SVal::Opaque {
                    refinements,
                    entries,
                },
            );
        }
        assert_eq!(
            heap.last_journal_event().unwrap(),
            JournalEvent::EntryAdded(f, 0)
        );
    }

    #[test]
    fn non_monotone_overwrite_is_a_rebase() {
        let mut heap = Heap::new();
        let l = heap.alloc_fresh_opaque();
        heap.refine(l, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(5)));
        // Structural refinement throws the numeric constraint away: rebase,
        // carrying the position at which the numeric refinement entered the
        // formula stream (journal position 1, right after the allocation).
        let car = heap.alloc_fresh_opaque();
        let cdr = heap.alloc_fresh_opaque();
        heap.set(l, SVal::Pair(car, cdr));
        assert_eq!(
            heap.last_journal_event().unwrap(),
            JournalEvent::Rebase {
                loc: l,
                retract_to: 1
            }
        );
        // Overwriting a location that never contributed formulas is not.
        let fresh = heap.alloc_fresh_opaque();
        heap.set(fresh, SVal::Bool(true));
        assert_eq!(
            heap.last_journal_event().unwrap(),
            JournalEvent::Touched(fresh)
        );
    }

    #[test]
    fn write_points_mark_first_formula_contributions() {
        let mut heap = Heap::new();
        let plain = heap.alloc_fresh_opaque(); // position 0, no formulas
        assert_eq!(heap.write_point(plain), None);
        let n = heap.alloc(SVal::Num(Number::Int(7))); // position 1: x = 7
        assert_eq!(heap.write_point(n), Some(1));
        // A tag refinement contributes no formula; a numeric one does.
        heap.refine(plain, CRefinement::Is(Tag::Integer)); // position 2
        assert_eq!(heap.write_point(plain), None);
        heap.refine(plain, CRefinement::NumCmp(CmpOp::Ge, CSymExpr::int(0))); // position 3
        assert_eq!(heap.write_point(plain), Some(3));
        // Later refinements keep the earliest position.
        heap.refine(plain, CRefinement::NumCmp(CmpOp::Le, CSymExpr::int(9)));
        assert_eq!(heap.write_point(plain), Some(3));
    }

    #[test]
    fn memo_entries_set_write_points_for_referenced_locations() {
        let mut heap = Heap::new();
        let f = heap.alloc_fresh_opaque(); // 0
        let a = heap.alloc_fresh_opaque(); // 1
        let r = heap.alloc_fresh_opaque(); // 2
        if let SVal::Opaque { refinements, .. } = heap.get(f).clone() {
            heap.set(
                f,
                SVal::Opaque {
                    refinements,
                    entries: vec![(a, r)],
                },
            );
        }
        // The EntryAdded at position 3 makes f, a and r all formula-relevant
        // (the functionality encoding constrains every entry's locations).
        assert_eq!(heap.write_point(f), Some(3));
        assert_eq!(heap.write_point(a), Some(3));
        assert_eq!(heap.write_point(r), Some(3));
        // Overwriting the memo-referenced argument with a non-base value
        // rebases, telling consumers to retract back to that entry add.
        heap.set(a, SVal::Bool(true));
        assert_eq!(
            heap.last_journal_event().unwrap(),
            JournalEvent::Rebase {
                loc: a,
                retract_to: 3
            }
        );
        // The rebase resets the write-point to the rebase position itself.
        assert_eq!(heap.write_point(a), Some(4));
    }

    #[test]
    fn display_of_values_is_informative() {
        let mut heap = Heap::new();
        let l = heap.alloc(SVal::Num(Number::complex(0, 1)));
        assert_eq!(format!("{}", heap.get(l)), "0+1i");
        let o = heap.alloc_fresh_opaque();
        heap.refine(o, CRefinement::Is(Tag::Pair));
        assert!(format!("{}", heap.get(o)).contains("pair?"));
    }
}
