//! Abstract syntax of Contract PCF (CPCF): an untyped, higher-order language
//! with first-class contracts, user-defined structures, mutable boxes and a
//! simple module system — the language the paper's soft-contract
//! verification tool analyses (§4–§5).

use std::fmt;

/// A source label identifying a potentially-failing site or an opaque value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// Primitive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncated integer division; partial)
    Div,
    /// `modulo` (partial)
    Mod,
    /// `add1`
    Add1,
    /// `sub1`
    Sub1,
    /// `<` (requires real operands)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=` numeric equality
    NumEq,
    /// `zero?`
    IsZero,
    /// `not`
    Not,
    /// `number?`
    IsNumber,
    /// `real?`
    IsReal,
    /// `integer?`
    IsInteger,
    /// `procedure?`
    IsProcedure,
    /// `pair?`
    IsPair,
    /// `null?` (also `empty?`)
    IsNull,
    /// `boolean?`
    IsBoolean,
    /// `string?`
    IsString,
    /// `cons`
    Cons,
    /// `car` (partial)
    Car,
    /// `cdr` (partial)
    Cdr,
    /// `equal?`
    Equal,
    /// `assert` — blames when given `#f` or `0`.
    Assert,
    /// `error` — unconditionally blames.
    Raise,
    /// `box`
    MakeBox,
    /// `unbox` (partial: requires a box)
    Unbox,
    /// `set-box!` (partial: requires a box)
    SetBox,
    /// `string-length` (partial: requires a string)
    StringLength,
    /// `box?`
    IsBox,
}

impl Prim {
    /// The number of arguments the primitive expects, or `None` for
    /// variadic primitives (`+`, `*`, `list`-like).
    pub fn arity(self) -> Option<usize> {
        Some(match self {
            Prim::Add | Prim::Sub | Prim::Mul => return None,
            Prim::Div
            | Prim::Mod
            | Prim::Lt
            | Prim::Le
            | Prim::Gt
            | Prim::Ge
            | Prim::NumEq
            | Prim::Cons
            | Prim::Equal
            | Prim::SetBox => 2,
            _ => 1,
        })
    }

    /// Surface name of the primitive.
    pub fn name(self) -> &'static str {
        match self {
            Prim::Add => "+",
            Prim::Sub => "-",
            Prim::Mul => "*",
            Prim::Div => "/",
            Prim::Mod => "modulo",
            Prim::Add1 => "add1",
            Prim::Sub1 => "sub1",
            Prim::Lt => "<",
            Prim::Le => "<=",
            Prim::Gt => ">",
            Prim::Ge => ">=",
            Prim::NumEq => "=",
            Prim::IsZero => "zero?",
            Prim::Not => "not",
            Prim::IsNumber => "number?",
            Prim::IsReal => "real?",
            Prim::IsInteger => "integer?",
            Prim::IsProcedure => "procedure?",
            Prim::IsPair => "pair?",
            Prim::IsNull => "null?",
            Prim::IsBoolean => "boolean?",
            Prim::IsString => "string?",
            Prim::Cons => "cons",
            Prim::Car => "car",
            Prim::Cdr => "cdr",
            Prim::Equal => "equal?",
            Prim::Assert => "assert",
            Prim::Raise => "error",
            Prim::MakeBox => "box",
            Prim::Unbox => "unbox",
            Prim::SetBox => "set-box!",
            Prim::StringLength => "string-length",
            Prim::IsBox => "box?",
        }
    }

    /// Looks a primitive up by its surface name.
    pub fn from_name(name: &str) -> Option<Prim> {
        Some(match name {
            "+" => Prim::Add,
            "-" => Prim::Sub,
            "*" => Prim::Mul,
            "/" | "quotient" => Prim::Div,
            "modulo" | "remainder" => Prim::Mod,
            "add1" => Prim::Add1,
            "sub1" => Prim::Sub1,
            "<" => Prim::Lt,
            "<=" => Prim::Le,
            ">" => Prim::Gt,
            ">=" => Prim::Ge,
            "=" => Prim::NumEq,
            "zero?" => Prim::IsZero,
            "not" => Prim::Not,
            "number?" => Prim::IsNumber,
            "real?" => Prim::IsReal,
            "integer?" | "exact-integer?" => Prim::IsInteger,
            "procedure?" => Prim::IsProcedure,
            "pair?" | "cons?" => Prim::IsPair,
            "null?" | "empty?" => Prim::IsNull,
            "boolean?" => Prim::IsBoolean,
            "string?" => Prim::IsString,
            "cons" => Prim::Cons,
            "car" | "first" => Prim::Car,
            "cdr" | "rest" => Prim::Cdr,
            "equal?" | "eq?" | "eqv?" => Prim::Equal,
            "assert" => Prim::Assert,
            "error" => Prim::Raise,
            "box" => Prim::MakeBox,
            "unbox" => Prim::Unbox,
            "set-box!" => Prim::SetBox,
            "string-length" => Prim::StringLength,
            "box?" => Prim::IsBox,
            _ => return None,
        })
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Blame: which party broke which obligation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CBlame {
    /// The blamed party (a module name, `"context"`, or `"prim"` for raw
    /// primitive misuse inside the blamed party's code).
    pub party: String,
    /// Human-readable description of the violated obligation.
    pub message: String,
    /// The source label of the failing site.
    pub label: Label,
}

impl fmt::Display for CBlame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "blame {}: {} (at {})",
            self.party, self.message, self.label
        )
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Exact complex literal.
    Complex(i64, i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// The empty list `'()`.
    Nil,
    /// `(lambda (x …) body)`
    Lam {
        /// Parameter names.
        params: Vec<String>,
        /// Body.
        body: Box<Expr>,
    },
    /// Application.
    App(Box<Expr>, Vec<Expr>),
    /// `(if c t e)`
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Short-circuiting conjunction.
    And(Vec<Expr>),
    /// Short-circuiting disjunction.
    Or(Vec<Expr>),
    /// Sequencing.
    Begin(Vec<Expr>),
    /// `(let ([x e] …) body)` — kept primitive (not desugared) so that
    /// recursive local bindings via `letrec` can share the machinery.
    Let {
        /// Bindings, evaluated left to right.
        bindings: Vec<(String, Expr)>,
        /// Whether bindings are in scope in their own right-hand sides.
        recursive: bool,
        /// Body.
        body: Box<Expr>,
    },
    /// Primitive application.
    Prim(Prim, Vec<Expr>, Label),
    /// An opaque (unknown) value.
    Opaque(Label),
    /// Function contract `(-> dom … rng)`.
    CArrow(Vec<Expr>, Box<Expr>),
    /// `(and/c c …)`
    CAnd(Vec<Expr>),
    /// `(or/c c …)`
    COr(Vec<Expr>),
    /// `(cons/c c c)`
    CCons(Box<Expr>, Box<Expr>),
    /// `(listof c)`
    CListOf(Box<Expr>),
    /// `(one-of/c v …)`
    COneOf(Vec<Expr>),
    /// `any/c`
    CAny,
    /// Contract monitoring `monᵖᵒˢ,ⁿᵉᵍ(contract, value)`.
    Mon {
        /// Contract expression.
        contract: Box<Expr>,
        /// Monitored expression.
        value: Box<Expr>,
        /// Party blamed when the value breaks the contract.
        pos: String,
        /// Party blamed when the context breaks the contract.
        neg: String,
        /// Source label of the monitor.
        label: Label,
    },
    /// Construct a struct instance.
    StructMake(String, Vec<Expr>),
    /// Test for a struct tag.
    StructPred(String, Box<Expr>),
    /// Project a struct field (partial).
    StructGet(String, usize, Box<Expr>, Label),
}

impl Expr {
    /// `(lambda (params…) body)`
    pub fn lam<S: Into<String>>(params: Vec<S>, body: Expr) -> Expr {
        Expr::Lam {
            params: params.into_iter().map(Into::into).collect(),
            body: Box::new(body),
        }
    }

    /// Application.
    pub fn app(function: Expr, args: Vec<Expr>) -> Expr {
        Expr::App(Box::new(function), args)
    }

    /// Variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Conditional.
    pub fn ite(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::If(Box::new(c), Box::new(t), Box::new(e))
    }

    /// Collects the labels of opaque sub-expressions.
    pub fn opaque_labels(&self) -> Vec<Label> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Opaque(label) = e {
                if !out.contains(label) {
                    out.push(*label);
                }
            }
        });
        out
    }

    /// Calls `visit` on every sub-expression (pre-order).
    pub fn walk<F: FnMut(&Expr)>(&self, visit: &mut F) {
        visit(self);
        match self {
            Expr::Var(_)
            | Expr::Int(_)
            | Expr::Complex(_, _)
            | Expr::Bool(_)
            | Expr::Str(_)
            | Expr::Nil
            | Expr::Opaque(_)
            | Expr::CAny => {}
            Expr::Lam { body, .. } => body.walk(visit),
            Expr::App(f, args) => {
                f.walk(visit);
                for a in args {
                    a.walk(visit);
                }
            }
            Expr::If(c, t, e) => {
                c.walk(visit);
                t.walk(visit);
                e.walk(visit);
            }
            Expr::And(es)
            | Expr::Or(es)
            | Expr::Begin(es)
            | Expr::CAnd(es)
            | Expr::COr(es)
            | Expr::COneOf(es) => {
                for e in es {
                    e.walk(visit);
                }
            }
            Expr::Let { bindings, body, .. } => {
                for (_, e) in bindings {
                    e.walk(visit);
                }
                body.walk(visit);
            }
            Expr::Prim(_, args, _) | Expr::StructMake(_, args) => {
                for a in args {
                    a.walk(visit);
                }
            }
            Expr::CArrow(doms, rng) => {
                for d in doms {
                    d.walk(visit);
                }
                rng.walk(visit);
            }
            Expr::CCons(a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            Expr::CListOf(c) => c.walk(visit),
            Expr::Mon {
                contract, value, ..
            } => {
                contract.walk(visit);
                value.walk(visit);
            }
            Expr::StructPred(_, e) => e.walk(visit),
            Expr::StructGet(_, _, e, _) => e.walk(visit),
        }
    }
}

/// A struct type declaration `(struct name (field …))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name (also the constructor name).
    pub name: String,
    /// Field names, in order.
    pub fields: Vec<String>,
}

/// A top-level definition inside a module.
#[derive(Debug, Clone, PartialEq)]
pub struct Definition {
    /// Defined name.
    pub name: String,
    /// Defining expression.
    pub body: Expr,
}

/// A provided (exported) name together with its contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Provide {
    /// Exported name.
    pub name: String,
    /// Contract expression guarding the export.
    pub contract: Expr,
}

/// A module: struct declarations, definitions and contracted exports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Module name (the positive blame party for its exports).
    pub name: String,
    /// Struct declarations.
    pub structs: Vec<StructDef>,
    /// Definitions, in order.
    pub definitions: Vec<Definition>,
    /// Contracted exports.
    pub provides: Vec<Provide>,
}

/// A whole program: a sequence of modules. The last module is conventionally
/// the one under analysis unless a name is given explicitly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The modules, in definition order.
    pub modules: Vec<Module>,
}

impl Program {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Counts the source lines of the original text (set by the parser); a
    /// convenience for the Table 1 harness.
    pub fn all_definitions(&self) -> impl Iterator<Item = &Definition> + '_ {
        self.modules.iter().flat_map(|m| m.definitions.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_names_round_trip() {
        for prim in [
            Prim::Add,
            Prim::Div,
            Prim::Lt,
            Prim::IsNumber,
            Prim::IsProcedure,
            Prim::Car,
            Prim::SetBox,
            Prim::Raise,
        ] {
            assert_eq!(Prim::from_name(prim.name()), Some(prim));
        }
        assert_eq!(Prim::from_name("no-such-prim"), None);
    }

    #[test]
    fn opaque_labels_are_deduplicated() {
        let e = Expr::app(
            Expr::Opaque(Label(1)),
            vec![Expr::Opaque(Label(1)), Expr::Opaque(Label(2))],
        );
        assert_eq!(e.opaque_labels().len(), 2);
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::ite(
            Expr::Prim(Prim::IsZero, vec![Expr::var("x")], Label(0)),
            Expr::Int(1),
            Expr::app(Expr::var("f"), vec![Expr::Int(2)]),
        );
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 7);
    }

    #[test]
    fn program_lookup_by_name() {
        let mut program = Program::default();
        program.modules.push(Module {
            name: "m".to_string(),
            ..Module::default()
        });
        assert!(program.module("m").is_some());
        assert!(program.module("n").is_none());
    }
}
