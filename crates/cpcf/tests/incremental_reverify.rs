//! Incremental re-verification through the persistent analysis store:
//! a cold run populates per-export verdicts keyed by dependency-cone hash,
//! and subsequent `incremental: true` runs skip every export whose cone is
//! unchanged — re-analyzing exactly the exports an edit actually reaches.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use cpcf::{analyze_source_with, AnalysisStore, AnalyzeOptions, EngineFingerprint, ExportAnalysis};

/// A fresh per-test store directory under the system temp dir.
fn temp_store_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "cpcf-incr-test-{}-{}-{}",
        std::process::id(),
        tag,
        unique
    ))
}

/// Two modules, three exports in `main`: `f` reaches `helpers.double`,
/// `g` and `h` are self-contained. Editing `double` must re-analyze `f`
/// only; `g` and `h` stay skipped.
const SOURCE_V1: &str = r#"
    (module helpers
      (provide [double (-> integer? integer?)])
      (define (double x) (* x 2))
      (define (offset x) (+ x 7)))
    (module main
      (provide [f (-> integer? integer?)]
               [g (-> integer? integer?)]
               [h (-> integer? integer?)])
      (define (f n) (double n))
      (define (g n) (+ n 1))
      (define (h n) (- n 3)))
"#;

fn options_with_store(store: AnalysisStore, incremental: bool) -> AnalyzeOptions {
    AnalyzeOptions {
        store: Some(store),
        incremental,
        workers: 1,
        ..AnalyzeOptions::default()
    }
}

fn open_store(dir: &PathBuf) -> AnalysisStore {
    let fingerprint = EngineFingerprint::for_analyze(&AnalyzeOptions::default());
    AnalysisStore::open(dir, fingerprint).expect("store opens")
}

#[test]
fn unchanged_source_skips_every_export_and_reuses_verdicts() {
    let dir = temp_store_dir("unchanged");

    let cold_store = open_store(&dir);
    let cold =
        analyze_source_with(SOURCE_V1, &options_with_store(cold_store, true)).expect("v1 parses");
    assert!(
        cold.skipped.is_empty(),
        "an empty store has nothing to skip from, got {:?}",
        cold.skipped
    );
    assert!(cold.all_verified(), "the v1 exports all verify");

    // A new process over the same directory: every cone hash is unchanged,
    // so the warm run answers all three exports from the store.
    let warm_store = open_store(&dir);
    assert_eq!(warm_store.cone_count(), 3, "three per-export cone records");
    let warm =
        analyze_source_with(SOURCE_V1, &options_with_store(warm_store, true)).expect("v1 parses");
    assert_eq!(
        warm.skipped,
        vec!["f".to_string(), "g".to_string(), "h".to_string()],
        "a fully warm incremental run skips every export"
    );
    assert_eq!(
        warm.exports, cold.exports,
        "reused verdicts are bit-identical to the cold run's"
    );
    assert_eq!(
        warm.stats.queries, 0,
        "nothing was re-proved on the fully warm run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn editing_one_dependency_reanalyzes_only_its_dependents() {
    let dir = temp_store_dir("edit");

    let cold = analyze_source_with(SOURCE_V1, &options_with_store(open_store(&dir), true))
        .expect("v1 parses");
    assert!(cold.skipped.is_empty());

    // Edit `double` — reached only by `f`. The warm incremental run must
    // re-analyze `f` and answer `g` and `h` from the store.
    let v2 = SOURCE_V1.replace("(* x 2)", "(* x 3)");
    let warm =
        analyze_source_with(&v2, &options_with_store(open_store(&dir), true)).expect("v2 parses");
    assert_eq!(
        warm.skipped,
        vec!["g".to_string(), "h".to_string()],
        "only the exports outside the edited cone are skipped"
    );
    assert!(warm.all_verified(), "the edited `f` still verifies");
    assert_eq!(warm.exports.len(), 3, "skipped exports keep their slots");

    // A third run over the edited source is fully warm again: the edited
    // cone's verdict was recorded under its new hash.
    let rewarm =
        analyze_source_with(&v2, &options_with_store(open_store(&dir), true)).expect("v2 parses");
    assert_eq!(
        rewarm.skipped.len(),
        3,
        "the v2 verdicts are now all stored"
    );

    // And the original source still hits its own records — both program
    // versions coexist in one store, keyed by cone hash.
    let v1_again = analyze_source_with(SOURCE_V1, &options_with_store(open_store(&dir), true))
        .expect("v1 parses");
    assert_eq!(
        v1_again.skipped.len(),
        3,
        "v1 cone records were not evicted"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_incremental_runs_never_skip_but_still_record() {
    let dir = temp_store_dir("record");

    // A plain (non-incremental) run with a store attached records cones...
    let cold = analyze_source_with(SOURCE_V1, &options_with_store(open_store(&dir), false))
        .expect("v1 parses");
    assert!(cold.skipped.is_empty());

    // ...which a later incremental run reuses; but re-running without
    // `incremental` re-analyzes everything even though the store is warm.
    let plain = analyze_source_with(SOURCE_V1, &options_with_store(open_store(&dir), false))
        .expect("v1 parses");
    assert!(
        plain.skipped.is_empty(),
        "skipping is opt-in via `incremental`"
    );
    let incremental = analyze_source_with(SOURCE_V1, &options_with_store(open_store(&dir), true))
        .expect("v1 parses");
    assert_eq!(incremental.skipped.len(), 3);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn skipped_counterexample_verdicts_round_trip() {
    let dir = temp_store_dir("cex");

    // `bad` violates its range contract; the cold run finds and validates a
    // counterexample, and the warm incremental run reuses it bit-for-bit.
    let source = r#"
        (module main
          (provide [bad (-> integer? (lambda (n) (> n 0)))]
                   [good (-> integer? integer?)])
          (define (bad n) (- n 100))
          (define (good n) (+ n 1)))
    "#;
    let cold =
        analyze_source_with(source, &options_with_store(open_store(&dir), true)).expect("parses");
    let cold_bad = &cold.exports[0];
    assert!(
        matches!(cold_bad.1, ExportAnalysis::Counterexample(_)),
        "the cold run refutes `bad`, got {:?}",
        cold_bad
    );

    let warm =
        analyze_source_with(source, &options_with_store(open_store(&dir), true)).expect("parses");
    assert_eq!(warm.skipped.len(), 2);
    assert_eq!(
        warm.exports, cold.exports,
        "the stored counterexample (blame, bindings, validation bit) \
         round-trips unchanged"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
